"""Freshness models: how stale a mechanism's data can be, and the
minimum useful polling interval that follows from it.

Every vendor path in the paper rations freshness differently — BG/Q
EMON returns the *oldest* of two sensor generations, RAPL counters
update with documented jitter below 60 ms, NVML and the Phi SMC refresh
on fixed hardware periods — yet each reduces to one number MonEQ needs:
the lowest polling interval possible for the given hardware.  A
:class:`FreshnessModel` declares the *reason* (kind + parameters) and
derives ``min_interval_s`` from it, validated at construction, instead
of each backend hand-coding a ``MIN_INTERVAL_S`` constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class FreshnessKind(enum.Enum):
    """Why a mechanism's data has a freshness floor."""

    #: The mechanism returns data ``depth`` hardware sample generations
    #: behind the present (EMON's "oldest generation of power data");
    #: polling faster than ``depth`` generations re-reads the same data.
    GENERATIONS = "generations"
    #: The device refreshes its register on a fixed period (NVML board
    #: power, the Phi SMC); polling faster returns unchanged values.
    REFRESH = "refresh"
    #: An empirical floor documented for the mechanism (RAPL's update
    #: jitter, the Phi management paths) rather than a visible period.
    FLOOR = "floor"


@dataclass(frozen=True)
class FreshnessModel:
    """One mechanism's freshness declaration.

    ``min_interval_s`` is *derived*: ``period_s * depth`` for
    generation-staged data, ``period_s`` for refresh-limited and
    floor-declared mechanisms.  ``note`` records the paper's wording for
    the limit so the registry stays self-documenting.
    """

    kind: FreshnessKind
    period_s: float
    depth: int = 1
    note: str = ""

    def __post_init__(self):
        if self.period_s <= 0.0:
            raise ConfigError(
                f"freshness period must be positive, got {self.period_s}"
            )
        if self.depth < 1:
            raise ConfigError(f"freshness depth must be >= 1, got {self.depth}")
        if self.kind is not FreshnessKind.GENERATIONS and self.depth != 1:
            raise ConfigError(
                f"depth is only meaningful for GENERATIONS, got depth="
                f"{self.depth} for {self.kind.value}"
            )

    @property
    def min_interval_s(self) -> float:
        """The lowest polling interval possible for the hardware."""
        if self.kind is FreshnessKind.GENERATIONS:
            return self.period_s * self.depth
        return self.period_s

    # -- declarative constructors -------------------------------------------

    @classmethod
    def generations(cls, period_s: float, depth: int,
                    note: str = "") -> "FreshnessModel":
        """Data served ``depth`` generations of ``period_s`` behind."""
        return cls(FreshnessKind.GENERATIONS, period_s, depth, note)

    @classmethod
    def refresh(cls, period_s: float, note: str = "") -> "FreshnessModel":
        """Device-side register refresh every ``period_s``."""
        return cls(FreshnessKind.REFRESH, period_s, note=note)

    @classmethod
    def floor(cls, period_s: float, note: str = "") -> "FreshnessModel":
        """A documented empirical floor of ``period_s``."""
        return cls(FreshnessKind.FLOOR, period_s, note=note)
