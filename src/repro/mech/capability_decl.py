"""Capability declarations: what each platform can report (Table I).

This module is **pure data** (no repro imports beyond errors) so the
capability matrix in :mod:`repro.core.capability` can be *derived* from
it without import cycles: mechanisms declare, the table renders.  Rows
are ``(category, item)`` pairs in the paper's vocabulary; anything not
declared available or N/A renders as unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CapabilityDecl:
    """One platform's Table I column, declared as row pairs."""

    platform: str
    available: tuple[tuple[str, str], ...]
    not_applicable: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        overlap = set(self.available) & set(self.not_applicable)
        if overlap:
            raise ConfigError(
                f"{self.platform}: rows declared both available and "
                f"not-applicable: {sorted(overlap)}"
            )

    @property
    def capability_count(self) -> int:
        """Number of Table I data points the platform can report."""
        return len(self.available)


XEON_PHI_DECL = CapabilityDecl(
    platform="Xeon Phi",
    available=(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Temperature", "Die"),
        ("Temperature", "DDR/GDDR"),
        ("Temperature", "Device"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Speed (kT/sec)"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Voltage"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Voltage"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

NVML_DECL = CapabilityDecl(
    platform="NVML",
    available=(
        ("Total Power Consumption (Watts)", "Total"),  # whole board only
        ("Temperature", "Die"),
        ("Temperature", "Device"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

BGQ_DECL = CapabilityDecl(
    platform="Blue Gene/Q",
    available=(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Main Memory", "Voltage"),
        ("Processor", "Voltage"),
    ),
    # Water-cooled node boards: no airflow sensors at the device level.
    not_applicable=(
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

RAPL_DECL = CapabilityDecl(
    platform="RAPL",
    available=(
        ("Total Power Consumption (Watts)", "Total"),  # socket scope
        ("Total Power Consumption (Watts)", "Main Memory"),  # DRAM domain
        ("Limits", "Get/Set Power Limit"),
    ),
    # A socket has no PCIe rail of its own nor airflow sensors.
    not_applicable=(
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

#: Platform name -> column declaration, in Table I column order.
PLATFORM_DECLS: dict[str, CapabilityDecl] = {
    decl.platform: decl
    for decl in (XEON_PHI_DECL, NVML_DECL, BGQ_DECL, RAPL_DECL)
}
