"""Discrete-event simulation substrate.

Everything in the repro package runs against a *virtual* clock: device
sensors update on virtual-time schedules, collection APIs charge virtual
latency per query, and MonEQ's SIGALRM analogue fires on virtual-time
periods.  This keeps every experiment deterministic and lets the
benchmarks regenerate the paper's overhead arithmetic exactly.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.hashrand import hash_normal, hash_uniform
from repro.sim.timers import PeriodicTimer
from repro.sim.signals import (
    ClippedSignal,
    ConstantSignal,
    ExponentialApproachSignal,
    PiecewiseConstantSignal,
    PeriodicPulseSignal,
    RampSignal,
    ScaledSignal,
    Signal,
    SumSignal,
)
from repro.sim.noise import (
    ComposedNoise,
    GaussianNoise,
    NoNoise,
    NoiseModel,
    QuantizationNoise,
    UniformNoise,
)
from repro.sim.integrate import CumulativeIntegral
from repro.sim.sensor import CounterSensor, SampledSensor
from repro.sim.trace import TraceSeries, TraceSet

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "RngRegistry",
    "derive_seed",
    "hash_normal",
    "hash_uniform",
    "PeriodicTimer",
    "Signal",
    "ConstantSignal",
    "PiecewiseConstantSignal",
    "RampSignal",
    "ExponentialApproachSignal",
    "PeriodicPulseSignal",
    "SumSignal",
    "ScaledSignal",
    "ClippedSignal",
    "NoiseModel",
    "ComposedNoise",
    "NoNoise",
    "GaussianNoise",
    "UniformNoise",
    "QuantizationNoise",
    "TraceSeries",
    "TraceSet",
    "CumulativeIntegral",
    "SampledSensor",
    "CounterSensor",
]
