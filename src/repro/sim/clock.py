"""Virtual clock.

A :class:`VirtualClock` is a monotonically non-decreasing float time in
seconds.  Devices, filesystems and the SPMD runtime all share one clock so
that latencies charged by one layer (e.g. a 14.2 ms SysMgmt query on the
Xeon Phi) are visible to every other layer (e.g. MonEQ's overhead
accounting).
"""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """Monotonic virtual time in seconds.

    Parameters
    ----------
    start:
        Initial time.  Experiments usually start at 0; the BG/Q
        environmental database demo starts at an arbitrary wall-clock epoch
        to exercise timestamp formatting.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ClockError(f"clock cannot start before t=0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; the simulation never rewinds.
        """
        if dt < 0.0:
            raise ClockError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (>= now)."""
        if t < self._now:
            raise ClockError(f"cannot move clock backwards: now={self._now}, target={t}")
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"
