"""Periodic virtual timers — the simulation analogue of SIGALRM.

MonEQ "registers to receive a SIGALRM signal at that polling interval"
(paper §III).  :class:`PeriodicTimer` reproduces the semantics that matter
for overhead accounting: drift-free scheduling (ticks land on
``epoch + k*interval`` regardless of how long the handler runs, as long as
the handler is shorter than the interval), and coalescing (if a handler
overruns one or more periods, missed ticks collapse into a single late
tick, as POSIX does for non-queued signals).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigError
from repro.sim.events import Event, EventQueue


class PeriodicTimer:
    """Fires ``handler(t, tick_index)`` every ``interval`` virtual seconds.

    Parameters
    ----------
    queue:
        Event queue providing the clock.
    interval:
        Period in seconds; must be positive.
    handler:
        Callback; may advance the clock (handler cost).  If it advances
        past one or more subsequent deadlines, those ticks coalesce into
        the next one and are counted in :attr:`ticks_coalesced`.
    start_offset:
        Delay before the first tick, default one full interval.
    """

    def __init__(
        self,
        queue: EventQueue,
        interval: float,
        handler: Callable[[float, int], None],
        start_offset: float | None = None,
    ):
        if interval <= 0.0:
            raise ConfigError(f"timer interval must be positive, got {interval}")
        self.queue = queue
        self.interval = float(interval)
        self.handler = handler
        self.ticks_fired = 0
        self.ticks_coalesced = 0
        self._armed = True
        offset = self.interval if start_offset is None else float(start_offset)
        if offset < 0.0:
            raise ConfigError(f"start offset must be non-negative, got {offset}")
        # Deadlines are epoch + k*interval for integer k >= 1, where the
        # epoch is chosen so the first deadline is now + offset.
        self.epoch = queue.clock.now + offset - self.interval
        self._k = 1
        self._event: Event | None = queue.schedule(
            self.epoch + self._k * self.interval, self._fire
        )

    @property
    def armed(self) -> bool:
        """True until :meth:`cancel` is called."""
        return self._armed

    def cancel(self) -> None:
        """Stop the timer; the pending tick is dropped."""
        self._armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def plan_block(self, advance_per_tick: float, t_limit: float | None,
                   horizon: float, max_ticks: int) -> tuple[list[float], int, int]:
        """Deadlines of the currently-firing tick plus the lookahead
        ticks that would follow it, assuming the handler advances the
        clock by exactly ``advance_per_tick`` per tick.

        Call from *inside* the handler.  The grid replays this timer's
        recurrence — including coalescing, when ``advance_per_tick``
        overruns the interval — and stops strictly before ``t_limit``
        (the next foreign event must keep its place in the event order),
        at ``horizon`` inclusive (a tick exactly on the run_until bound
        still fires), and at ``max_ticks`` entries.

        Returns ``(times, k_last, coalesced)``; pass the counts to
        :meth:`commit_block` after handling the block so the
        post-handler reschedule continues the exact recurrence the
        scalar path would have produced.
        """
        k = self._k
        t = self.epoch + k * self.interval
        times = [t]
        coalesced = 0
        while len(times) < max_ticks:
            now = t + advance_per_tick
            k_next = max(k + 1, math.floor((now - self.epoch) / self.interval) + 1)
            t_next = self.epoch + k_next * self.interval
            if t_limit is not None and t_next >= t_limit:
                break
            if t_next > horizon:
                break
            coalesced += k_next - (k + 1)
            k = k_next
            t = t_next
            times.append(t)
        return times, k, coalesced

    def commit_block(self, count: int, k_last: int, coalesced: int) -> None:
        """Account for ``count`` ticks handled in one batched call.

        The firing tick was already counted by the dispatch; the
        ``count - 1`` lookahead ticks and any intra-block coalescing
        land here, and the deadline index moves to the last handled
        tick so the reschedule after the handler returns matches the
        scalar path bit for bit.
        """
        self.ticks_fired += count - 1
        self.ticks_coalesced += coalesced
        self._k = k_last

    def _fire(self, t: float) -> None:
        if not self._armed:
            return
        index = self.ticks_fired
        self.ticks_fired += 1
        self.handler(t, index)
        if not self._armed:
            return
        # Next deadline: first multiple strictly after the post-handler
        # clock.  Any deadlines the handler ran past are coalesced.
        now = self.queue.clock.now
        k_next = max(self._k + 1, math.floor((now - self.epoch) / self.interval) + 1)
        self.ticks_coalesced += k_next - (self._k + 1)
        self._k = k_next
        self._event = self.queue.schedule(self.epoch + self._k * self.interval, self._fire)
