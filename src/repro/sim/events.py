"""Discrete-event queue.

A thin, deterministic event scheduler: events fire in (time, sequence)
order, so two events scheduled for the same instant fire in the order they
were scheduled.  Used by :class:`repro.sim.timers.PeriodicTimer` (MonEQ's
virtual SIGALRM), by the BG/Q environmental database poller, and by the
SPMD runtime.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[[float], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` bound to a :class:`VirtualClock`.

    Callbacks receive the firing time and may schedule further events
    (periodic timers reschedule themselves this way).
    """

    def __init__(self, clock: VirtualClock | None = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: While :meth:`run_until` drives the queue, the bound it will
        #: run to; None under :meth:`step`/:meth:`run_all`.  Handlers
        #: that can batch work ahead of the clock (the MonEQ
        #: block-sampling engine) read this to know how far lookahead
        #: is safe.
        self.horizon: float | None = None

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, time: float, callback: Callable[[float], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={time}, now={self.clock.now}"
            )
        event = Event(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[float], None]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next live event, advancing the clock to its time.

        Returns False when no live events remain.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        event.callback(event.time)
        return True

    def run_until(self, t_end: float) -> int:
        """Fire every event with ``time <= t_end`` then advance the clock
        to exactly ``t_end``.  Returns the number of events fired.

        :attr:`horizon` exposes ``t_end`` for the duration of the drive
        (saved and restored, so a handler that itself calls run_until
        sees its own bound)."""
        fired = 0
        previous = self.horizon
        self.horizon = float(t_end)
        try:
            while True:
                self._drop_cancelled()
                if not self._heap or self._heap[0].time > t_end:
                    break
                event = heapq.heappop(self._heap)
                self.clock.advance_to(event.time)
                event.callback(event.time)
                fired += 1
        finally:
            self.horizon = previous
        self.clock.advance_to(max(self.clock.now, t_end))
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue.  ``max_events`` guards against runaway
        self-rescheduling timers."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(f"run_all exceeded {max_events} events")
        return fired

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
