"""Counter-based deterministic randomness.

Sensor noise must be a pure function of *which sample* is being read —
``noise(sensor_seed, sample_index)`` — so that re-reading a sample-and-hold
register between hardware updates returns the identical value, and so that
two collectors polling the same sensor observe the same jitter (the paper's
Figure 7 comparison depends on the *device* power being the noisy signal,
not the reader).  Stateful generators cannot give that property, so we use
a SplitMix64-style hash evaluated vectorized in NumPy.
"""

from __future__ import annotations

import numpy as np

_U64 = np.uint64
_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
# SplitMix64 constants (Steele, Lea, Flood 2014).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over uint64 input.

    uint64 wraparound is the point of the algorithm, so overflow warnings
    are suppressed locally.
    """
    with np.errstate(over="ignore"):
        z = (x + _GAMMA) & _MASK
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _MASK
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _MASK
        return z ^ (z >> np.uint64(31))


def hash_u64(seed: int, index: np.ndarray | int) -> np.ndarray:
    """Deterministic 64-bit hash of (seed, index); vectorized over index."""
    idx = np.asarray(index, dtype=np.uint64)
    s = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    # Two rounds: fold the seed in, then finalize the combination.
    return _splitmix64(_splitmix64(idx) ^ s)


def hash_uniform(seed: int, index: np.ndarray | int) -> np.ndarray:
    """Uniform floats in [0, 1) from (seed, index).  Shape follows index."""
    bits = hash_u64(seed, index)
    # Use the top 53 bits for a full-precision double in [0, 1).
    with np.errstate(over="ignore"):
        return (bits >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def hash_normal(seed: int, index: np.ndarray | int) -> np.ndarray:
    """Standard-normal deviates from (seed, index) via Box-Muller.

    Each index yields one deviate; the pair partner comes from a
    seed-offset second hash so indices stay 1:1 with samples.
    """
    u1 = hash_uniform(seed, index)
    u2 = hash_uniform(seed ^ 0x5DEECE66D, index)
    # Guard log(0).
    u1 = np.maximum(u1, 1e-300)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def hash_choice_mask(seed: int, index: np.ndarray | int, p_true: float) -> np.ndarray:
    """Deterministic Bernoulli(p_true) mask over indices."""
    if not 0.0 <= p_true <= 1.0:
        raise ValueError(f"p_true must be in [0,1], got {p_true}")
    return hash_uniform(seed, index) < p_true
