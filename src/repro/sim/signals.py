"""Continuous time signals.

Device power models are built by composing signals: a workload contributes
a utilization signal per component (piecewise phases, ramps, periodic
pulses for the rhythmic structure in the paper's Figure 3), the device maps
utilization to watts, and sensors sample the result.  Every signal
evaluates vectorized over a NumPy array of times, which is what makes
regenerating a 250-second trace at 100 ms resolution cheap.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import WorkloadError


def _as_times(t: np.ndarray | float) -> np.ndarray:
    return np.asarray(t, dtype=np.float64)


@runtime_checkable
class Signal(Protocol):
    """A real-valued function of time, vectorized over NumPy arrays."""

    def value(self, t: np.ndarray | float) -> np.ndarray:
        """Evaluate at time(s) ``t`` (seconds); shape follows ``t``."""
        ...


class ConstantSignal:
    """``value(t) == level`` everywhere."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return np.full_like(_as_times(t), self.level, dtype=np.float64)


class PiecewiseConstantSignal:
    """Right-continuous step function.

    ``breakpoints`` are the times at which the level changes; ``levels``
    has one more entry than ``breakpoints`` (level before the first break,
    then after each break).
    """

    def __init__(self, breakpoints: Sequence[float], levels: Sequence[float]):
        self.breakpoints = np.asarray(breakpoints, dtype=np.float64)
        self.levels = np.asarray(levels, dtype=np.float64)
        if self.breakpoints.ndim != 1 or self.levels.ndim != 1:
            raise WorkloadError("breakpoints and levels must be 1-D")
        if len(self.levels) != len(self.breakpoints) + 1:
            raise WorkloadError(
                f"need len(levels) == len(breakpoints)+1, got "
                f"{len(self.levels)} vs {len(self.breakpoints)}"
            )
        if np.any(np.diff(self.breakpoints) < 0):
            raise WorkloadError("breakpoints must be non-decreasing")

    def value(self, t: np.ndarray | float) -> np.ndarray:
        idx = np.searchsorted(self.breakpoints, _as_times(t), side="right")
        return self.levels[idx]


class RampSignal:
    """Linear ramp from ``start_level`` to ``end_level`` over [t0, t1],
    clamped outside."""

    def __init__(self, t0: float, t1: float, start_level: float, end_level: float):
        if t1 <= t0:
            raise WorkloadError(f"ramp needs t1 > t0, got [{t0}, {t1}]")
        self.t0, self.t1 = float(t0), float(t1)
        self.start_level, self.end_level = float(start_level), float(end_level)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        frac = np.clip((_as_times(t) - self.t0) / (self.t1 - self.t0), 0.0, 1.0)
        return self.start_level + frac * (self.end_level - self.start_level)


class ExponentialApproachSignal:
    """Exponential approach from ``start_level`` toward ``end_level``
    beginning at ``t0`` with time constant ``tau``; flat before ``t0``.

    Models the slow power rise of a GPU picking up work (paper Figure 4:
    "gradual increase until finally leveling off").
    """

    def __init__(self, t0: float, tau: float, start_level: float, end_level: float):
        if tau <= 0.0:
            raise WorkloadError(f"time constant must be positive, got {tau}")
        self.t0, self.tau = float(t0), float(tau)
        self.start_level, self.end_level = float(start_level), float(end_level)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        dt = np.maximum(_as_times(t) - self.t0, 0.0)
        frac = 1.0 - np.exp(-dt / self.tau)
        return self.start_level + frac * (self.end_level - self.start_level)


class PeriodicPulseSignal:
    """Adds ``amplitude`` during a window of each period, else 0.

    With a negative amplitude and a short duty window this produces the
    "rhythmic drop of about 5 Watts" the paper observes during Gaussian
    elimination (Figure 3); with a small positive amplitude it produces the
    "tiny spikes at regular intervals" between the drops.
    """

    def __init__(
        self,
        period: float,
        duty: float,
        amplitude: float,
        t0: float = 0.0,
        t1: float = np.inf,
        phase: float = 0.0,
    ):
        if period <= 0.0:
            raise WorkloadError(f"period must be positive, got {period}")
        if not 0.0 < duty <= 1.0:
            raise WorkloadError(f"duty must be in (0, 1], got {duty}")
        self.period, self.duty, self.amplitude = float(period), float(duty), float(amplitude)
        self.t0, self.t1, self.phase = float(t0), float(t1), float(phase)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        times = _as_times(t)
        pos = np.mod(times - self.t0 + self.phase, self.period) / self.period
        active = (times >= self.t0) & (times < self.t1) & (pos < self.duty)
        return np.where(active, self.amplitude, 0.0)


class SumSignal:
    """Pointwise sum of component signals."""

    def __init__(self, *components: Signal):
        if not components:
            raise WorkloadError("SumSignal needs at least one component")
        self.components = components

    def value(self, t: np.ndarray | float) -> np.ndarray:
        times = _as_times(t)
        total = np.zeros_like(times, dtype=np.float64)
        for component in self.components:
            total = total + component.value(times)
        return total


class ScaledSignal:
    """``gain * inner(t) + offset``."""

    def __init__(self, inner: Signal, gain: float = 1.0, offset: float = 0.0):
        self.inner, self.gain, self.offset = inner, float(gain), float(offset)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return self.gain * self.inner.value(t) + self.offset


class ClippedSignal:
    """``inner(t)`` clamped into [lo, hi]."""

    def __init__(self, inner: Signal, lo: float = -np.inf, hi: float = np.inf):
        if hi < lo:
            raise WorkloadError(f"clip bounds inverted: [{lo}, {hi}]")
        self.inner, self.lo, self.hi = inner, float(lo), float(hi)

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return np.clip(self.inner.value(t), self.lo, self.hi)
