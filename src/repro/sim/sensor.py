"""Generic sensor models.

Two kinds of hardware sensor appear across the paper's four platforms:

* **Sample-and-hold gauges** — a register holding the most recent
  measurement of an instantaneous quantity (NVML power, updated ~60 ms;
  BG/Q domain voltage/current; Phi SMC temperatures).  Modeled by
  :class:`SampledSensor`: reads between hardware updates return the held
  value; each update is perturbed by the sensor's noise model.

* **Accumulating counters** — a fixed-width register counting quanta of an
  integral quantity (RAPL 32-bit energy status in 2^-16 J units).  Modeled
  by :class:`CounterSensor`, which wraps on overflow exactly as the paper
  warns ("registers can 'overfill' if they are not read frequently
  enough").
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SensorError
from repro.sim.integrate import CumulativeIntegral
from repro.sim.noise import NoiseModel, NoNoise
from repro.sim.signals import Signal


class SampledSensor:
    """Sample-and-hold gauge over a continuous truth signal.

    Parameters
    ----------
    truth:
        The underlying continuous signal (e.g. board power in watts).
    update_interval:
        Hardware refresh period in seconds.  Reads between refreshes
        return the identical held value.
    noise:
        Per-update measurement perturbation.
    seed:
        Seed for the counter-based noise (derive via
        :meth:`repro.sim.rng.RngRegistry.seed`).
    quantum:
        Optional reporting resolution (e.g. 1 mW for NVML); values are
        floored to a multiple of it *after* noise.
    phase:
        Offset of the hardware update grid; lets two domains refresh at
        different instants ("does not measure all domains at the exact
        same time", paper §II-A).
    """

    def __init__(
        self,
        truth: Signal,
        update_interval: float,
        noise: NoiseModel | None = None,
        seed: int = 0,
        quantum: float = 0.0,
        phase: float = 0.0,
    ):
        if update_interval <= 0.0:
            raise SensorError(f"update interval must be positive, got {update_interval}")
        if quantum < 0.0:
            raise SensorError(f"quantum must be non-negative, got {quantum}")
        self.truth = truth
        self.update_interval = float(update_interval)
        self.noise = noise if noise is not None else NoNoise()
        self.seed = int(seed)
        self.quantum = float(quantum)
        self.phase = float(phase)

    def sample_index(self, t: np.ndarray | float) -> np.ndarray:
        """Index of the hardware update visible at time ``t``."""
        times = np.asarray(t, dtype=np.float64)
        if np.any(times < 0.0):
            raise SensorError("cannot read sensor before t=0")
        return np.floor((times - self.phase) / self.update_interval).astype(np.int64)

    def last_update_time(self, t: np.ndarray | float) -> np.ndarray:
        """Time of the most recent hardware update at or before ``t``."""
        return self.sample_index(t) * self.update_interval + self.phase

    def read(self, t: np.ndarray | float) -> np.ndarray:
        """Measured value at time(s) ``t``; vectorized, deterministic."""
        idx = self.sample_index(t)
        # Clamp the update instant into [0, t]: before the first hardware
        # refresh the register holds the power-on sample at t=0.
        update_t = np.maximum(idx * self.update_interval + self.phase, 0.0)
        measured = self.noise.apply(
            self.seed, np.maximum(idx, 0), self.truth.value(update_t)
        )
        if self.quantum > 0.0:
            measured = np.floor(measured / self.quantum) * self.quantum
        return measured

    def staleness(self, t: float) -> float:
        """Age of the reading returned at ``t``."""
        return float(t - min(max(self.last_update_time(t), 0.0), t))


class CounterSensor:
    """Fixed-width accumulating counter over the integral of a signal.

    ``raw(t)`` returns the register contents: ``floor(I(t_update)/unit)
    mod 2**width_bits`` where I is the cumulative integral of the truth
    signal and ``t_update`` snaps to the hardware update grid.
    """

    def __init__(
        self,
        truth: Signal,
        unit: float,
        width_bits: int = 32,
        update_interval: float = 1e-3,
        dt: float = 1e-3,
        integral: object | None = None,
    ):
        if unit <= 0.0:
            raise SensorError(f"counter unit must be positive, got {unit}")
        if not 1 <= width_bits <= 64:
            raise SensorError(f"width_bits must be in [1, 64], got {width_bits}")
        if update_interval <= 0.0:
            raise SensorError(f"update interval must be positive, got {update_interval}")
        self.truth = truth
        self.unit = float(unit)
        self.width_bits = int(width_bits)
        self.modulus = 1 << width_bits
        self.update_interval = float(update_interval)
        # An external integral (e.g. a board-tracking one that invalidates
        # on schedule changes) may be supplied; it needs .value(t) only.
        self._integral = integral if integral is not None else CumulativeIntegral(truth, dt=dt)

    @property
    def wrap_value(self) -> float:
        """Accumulated quantity (e.g. joules) at which the counter wraps."""
        return self.modulus * self.unit

    def wrap_period(self, mean_rate: float) -> float:
        """Seconds between wraps at a given mean rate (e.g. watts).

        The paper's ~60 s RAPL guidance is this figure for a desktop
        package: 2^32 x 2^-16 J / ~1 kW-scale power.
        """
        if mean_rate <= 0.0:
            return math.inf
        return self.wrap_value / mean_rate

    def accumulated(self, t: float) -> float:
        """True (unwrapped) accumulated quantity at ``t``."""
        return float(self._integral.value(t))

    def raw(self, t: np.ndarray | float) -> np.ndarray:
        """Register contents at time(s) ``t`` (integer array)."""
        times = np.asarray(t, dtype=np.float64)
        if np.any(times < 0.0):
            raise SensorError("cannot read counter before t=0")
        snapped = np.floor(times / self.update_interval) * self.update_interval
        # Tolerate grid-integration rounding just below a quantum boundary.
        quanta = np.floor(self._integral.value(snapped) / self.unit + 1e-9).astype(np.int64)
        return quanta % self.modulus

    def delta(self, t0: float, t1: float) -> float:
        """Decode the accumulated quantity between two reads, assuming at
        most one wrap — the correction every RAPL consumer applies.

        If more than one wrap actually occurred the result silently
        underestimates, which is precisely the erroneous-data failure the
        paper describes for >60 s sampling.
        """
        if t1 < t0:
            raise SensorError(f"reads out of order: {t0} > {t1}")
        r0, r1 = (int(x) for x in self.raw(np.array([t0, t1])))
        diff = r1 - r0
        if diff < 0:
            diff += self.modulus
        return diff * self.unit
