"""Sensor noise models.

Each model perturbs a vector of true values given the *sample indices*
being read, using the counter-based hashes from :mod:`repro.sim.hashrand`.
Because noise is a pure function of (seed, sample index), re-reading a
held sample returns the identical value — matching real sample-and-hold
sensor registers — and results do not depend on how many other consumers
read the sensor.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.sim.hashrand import hash_normal, hash_uniform


@runtime_checkable
class NoiseModel(Protocol):
    """Perturbs true sensor values at given sample indices."""

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Return perturbed copy of ``values`` for sample ``indices``."""
        ...


class NoNoise:
    """Identity noise model."""

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)


class GaussianNoise:
    """Additive zero-mean Gaussian noise with standard deviation ``sigma``."""

    def __init__(self, sigma: float):
        if sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=np.float64) + self.sigma * hash_normal(seed, indices)


class UniformNoise:
    """Additive uniform noise in [-half_width, +half_width].

    NVML documents its power reading as accurate to +/-5 W; the error is
    bounded, not Gaussian, so the NVML sensor uses this model.
    """

    def __init__(self, half_width: float):
        if half_width < 0.0:
            raise ValueError(f"half_width must be non-negative, got {half_width}")
        self.half_width = float(half_width)

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        if self.half_width == 0.0:
            return np.asarray(values, dtype=np.float64)
        u = hash_uniform(seed, indices)
        return np.asarray(values, dtype=np.float64) + (2.0 * u - 1.0) * self.half_width


class QuantizationNoise:
    """Floor-quantization to a step size (energy-counter LSB, ADC step).

    Composes *after* additive noise in sensors: real hardware digitizes
    the already-noisy analogue value.
    """

    def __init__(self, step: float):
        if step <= 0.0:
            raise ValueError(f"step must be positive, got {step}")
        self.step = float(step)

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        return np.floor(np.asarray(values, dtype=np.float64) / self.step) * self.step


class ComposedNoise:
    """Apply component models in order (e.g. Gaussian then quantization)."""

    def __init__(self, *models: NoiseModel):
        self.models = models

    def apply(self, seed: int, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        out = np.asarray(values, dtype=np.float64)
        for i, model in enumerate(self.models):
            # Offset the seed per stage so stages are independent.
            out = model.apply(seed ^ (0xA5A5A5A5 * (i + 1)), indices, out)
        return out
