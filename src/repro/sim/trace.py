"""Trace containers.

A :class:`TraceSeries` is one sampled time series (timestamps + values);
a :class:`TraceSet` is a named collection sharing a time base — e.g. the
seven BG/Q domains MonEQ records per node card.  Both are thin wrappers
over NumPy arrays with the handful of operations every experiment needs:
energy integration, resampling, slicing, summary statistics, and tabular
export for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ReproError


class TraceError(ReproError):
    """Malformed trace construction or incompatible trace operands."""


@dataclass(frozen=True)
class TraceSeries:
    """A sampled time series.

    Attributes
    ----------
    times:
        Sample timestamps in seconds, strictly increasing.
    values:
        Sample values, same length as ``times``.
    name:
        Series label (``"pkg"``, ``"chip_core"``, ...).
    units:
        Unit string (``"W"``, ``"degC"``, ``"V"``...), for rendering.
    """

    times: np.ndarray
    values: np.ndarray
    name: str = ""
    units: str = "W"

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        if times.ndim != 1 or values.ndim != 1:
            raise TraceError("times and values must be 1-D")
        if len(times) != len(values):
            raise TraceError(f"length mismatch: {len(times)} times vs {len(values)} values")
        if len(times) > 1 and np.any(np.diff(times) <= 0):
            raise TraceError(f"timestamps must be strictly increasing in series {self.name!r}")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span from first to last sample (0 for <2 samples)."""
        return float(self.times[-1] - self.times[0]) if len(self) > 1 else 0.0

    @property
    def sample_interval(self) -> float:
        """Median inter-sample spacing (0 for <2 samples)."""
        return float(np.median(np.diff(self.times))) if len(self) > 1 else 0.0

    # -- statistics --------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        return float(np.mean(self.values)) if len(self) else float("nan")

    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for <2 samples)."""
        return float(np.std(self.values, ddof=1)) if len(self) > 1 else 0.0

    def min(self) -> float:
        return float(np.min(self.values)) if len(self) else float("nan")

    def max(self) -> float:
        return float(np.max(self.values)) if len(self) else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if len(self) else float("nan")

    # -- transforms --------------------------------------------------------

    def energy(self) -> float:
        """Trapezoidal integral of the series over time.

        For a power trace in watts this is the energy in joules.
        """
        if len(self) < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def between(self, t0: float, t1: float) -> "TraceSeries":
        """Sub-series with t0 <= time <= t1."""
        if t1 < t0:
            raise TraceError(f"window inverted: [{t0}, {t1}]")
        mask = (self.times >= t0) & (self.times <= t1)
        return TraceSeries(self.times[mask], self.values[mask], self.name, self.units)

    def shift(self, dt: float) -> "TraceSeries":
        """Series with all timestamps moved by ``dt``."""
        return TraceSeries(self.times + dt, self.values, self.name, self.units)

    def rename(self, name: str) -> "TraceSeries":
        return TraceSeries(self.times, self.values, name, self.units)

    def resample(self, interval: float) -> "TraceSeries":
        """Sample-and-hold resampling onto a regular grid of ``interval``."""
        if interval <= 0.0:
            raise TraceError(f"interval must be positive, got {interval}")
        if len(self) == 0:
            return self
        grid = np.arange(self.times[0], self.times[-1] + interval * 0.5, interval)
        idx = np.clip(np.searchsorted(self.times, grid, side="right") - 1, 0, len(self) - 1)
        return TraceSeries(grid, self.values[idx], self.name, self.units)

    def add(self, other: "TraceSeries", name: str | None = None) -> "TraceSeries":
        """Pointwise sum; requires an identical time base."""
        if len(self) != len(other) or not np.allclose(self.times, other.times):
            raise TraceError(
                f"cannot add series {self.name!r} and {other.name!r}: time bases differ"
            )
        return TraceSeries(
            self.times, self.values + other.values, name or f"{self.name}+{other.name}",
            self.units,
        )

    def to_rows(self) -> list[tuple[float, float]]:
        """(time, value) tuples, for text output."""
        return list(zip(self.times.tolist(), self.values.tolist()))


class TraceSet:
    """Named collection of :class:`TraceSeries` sharing a time base.

    Iteration order is insertion order, which the MonEQ output writer
    relies on to emit columns in domain order.
    """

    def __init__(self, series: Mapping[str, TraceSeries] | None = None):
        self._series: dict[str, TraceSeries] = {}
        if series:
            for name, s in series.items():
                self.add(name, s)

    def add(self, name: str, series: TraceSeries) -> None:
        if name in self._series:
            raise TraceError(f"duplicate series name {name!r}")
        if self._series:
            first = next(iter(self._series.values()))
            if len(first) != len(series) or not np.allclose(first.times, series.times):
                raise TraceError(f"series {name!r} has a different time base")
        self._series[name] = series

    def __getitem__(self, name: str) -> TraceSeries:
        try:
            return self._series[name]
        except KeyError:
            raise TraceError(f"no series named {name!r}; have {sorted(self._series)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __iter__(self) -> Iterator[str]:
        return iter(self._series)

    def __len__(self) -> int:
        return len(self._series)

    @property
    def names(self) -> list[str]:
        return list(self._series)

    @property
    def times(self) -> np.ndarray:
        if not self._series:
            return np.empty(0, dtype=np.float64)
        return next(iter(self._series.values())).times

    def total(self, name: str = "total", units: str = "W") -> TraceSeries:
        """Pointwise sum across all series (e.g. node-card power as the sum
        of the 7 BG/Q domains)."""
        if not self._series:
            raise TraceError("cannot total an empty TraceSet")
        values = np.sum([s.values for s in self._series.values()], axis=0)
        return TraceSeries(self.times, values, name, units)

    def to_table(self) -> tuple[list[str], np.ndarray]:
        """(header, 2-D array) with time as the first column."""
        header = ["time_s"] + self.names
        if not self._series:
            return header, np.empty((0, 1))
        cols = [self.times] + [s.values for s in self._series.values()]
        return header, np.column_stack(cols)
