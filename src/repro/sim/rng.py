"""Named, reproducible random streams.

Experiments derive every random stream from one root seed and a string
name (``"nvml.k20.power"``, ``"bgq.R00-M0-N03.dram"``), so adding a new
consumer of randomness never perturbs existing streams — the property that
keeps the regenerated figures stable across code growth.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (the built-in ``hash()`` is salted and unsuitable).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(root_seed.to_bytes(16, "little", signed=False))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngRegistry:
    """Factory for named deterministic random streams.

    ``stream(name)`` returns a ``numpy.random.Generator`` seeded from
    (root_seed, name); ``seed(name)`` returns the raw 64-bit child seed for
    use with the counter-based :mod:`repro.sim.hashrand` functions.
    """

    def __init__(self, root_seed: int = 0x5EED):
        if root_seed < 0:
            raise ValueError("root seed must be non-negative")
        self.root_seed = int(root_seed)
        self._generators: dict[str, np.random.Generator] = {}

    def seed(self, name: str) -> int:
        """64-bit deterministic child seed for ``name``."""
        return derive_seed(self.root_seed, name)

    def stream(self, name: str) -> np.random.Generator:
        """A persistent Generator for ``name`` (created on first use)."""
        gen = self._generators.get(name)
        if gen is None:
            gen = np.random.default_rng(self.seed(name))
            self._generators[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(self.seed(name))
