"""Cumulative integration of continuous signals.

Energy counters (RAPL's 32-bit energy-status registers, the Xeon Phi's
internal RAPL implementation) expose the *integral* of power.  The
:class:`CumulativeIntegral` evaluates a signal's running integral on a
cached dense grid and interpolates, so repeated counter reads are O(log n)
after the first and every reader sees one consistent energy history.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.signals import Signal


class CumulativeIntegral:
    """Lazy cached cumulative integral of a signal from t=0.

    Parameters
    ----------
    signal:
        The integrand (e.g. package power in watts).
    dt:
        Grid resolution in seconds.  1 ms resolves every feature the
        device models produce (the fastest is RAPL's ~1 ms update).
    """

    def __init__(self, signal: Signal, dt: float = 1e-3):
        if dt <= 0.0:
            raise SimulationError(f"integration dt must be positive, got {dt}")
        self.signal = signal
        self.dt = float(dt)
        self._grid_end = 0.0
        self._grid_n = 0
        self._times = np.zeros(1)
        self._cumulative = np.zeros(1)

    def _extend(self, t_end: float) -> None:
        """Grow the cached grid to cover [0, t_end]."""
        # Extend in generous chunks to amortize signal evaluation.
        target = max(t_end * 1.25, self._grid_end + 64.0 * self.dt)
        n_new = int(np.ceil((target - self._grid_end) / self.dt))
        # Grid points come from their integer index (dt * k), never from
        # offsetting the previous chunk's endpoint: the cached history is
        # then bit-identical no matter how reads were chunked, which the
        # MonEQ block-sampling engine relies on for scalar/block parity.
        new_times = self.dt * np.arange(
            self._grid_n + 1, self._grid_n + n_new + 1
        ).astype(np.float64)
        # Trapezoid over each new step, seeded with the last grid point.
        eval_times = np.concatenate(([self._grid_end], new_times))
        values = self.signal.value(eval_times)
        steps = 0.5 * (values[1:] + values[:-1]) * np.diff(eval_times)
        new_cumulative = self._cumulative[-1] + np.cumsum(steps)
        self._times = np.concatenate((self._times, new_times))
        self._cumulative = np.concatenate((self._cumulative, new_cumulative))
        self._grid_n += n_new
        self._grid_end = float(self._times[-1])

    def value(self, t: np.ndarray | float) -> np.ndarray:
        """Integral of the signal over [0, t]; vectorized over ``t``."""
        times = np.asarray(t, dtype=np.float64)
        if np.any(times < 0.0):
            raise SimulationError("cannot integrate to negative time")
        t_max = float(np.max(times, initial=0.0))
        if t_max > self._grid_end:
            self._extend(t_max)
        return np.interp(times, self._times, self._cumulative)

    def between(self, t0: float, t1: float) -> float:
        """Integral over [t0, t1]."""
        if t1 < t0:
            raise SimulationError(f"integration window inverted: [{t0}, {t1}]")
        ends = self.value(np.array([t0, t1]))
        return float(ends[1] - ends[0])
