"""repro — reproduction of *Comparison of Vendor Supplied Environmental Data
Collection Mechanisms* (Wallace et al., IEEE CLUSTER 2015).

The package simulates the four vendor environmental-data collection
mechanisms the paper surveys — IBM Blue Gene/Q (EMON + environmental
database), Intel RAPL (MSR / perf_event), NVIDIA NVML, and the Intel Xeon
Phi (SysMgmt SCIF API / MICRAS daemon / out-of-band IPMB) — together with a
Python port of **MonEQ**, the paper's unified power-profiling library.

Quickstart (the paper's "two lines of code")::

    from repro import moneq
    from repro.testbeds import rapl_node

    node, workload = rapl_node()
    session = moneq.initialize(node)          # line 1: setup power
    node.run(workload)
    result = moneq.finalize(session)          # line 2: finalize power
    print(result.trace("pkg").mean())

The supported public surface is re-exported by :mod:`repro.api`
(versioned, with a documented compatibility policy — see
``docs/api.md``); deep imports keep working but are implementation
detail.

Subpackages
-----------
``repro.api``
    The versioned public facade.
``repro.store``
    Sharded, write-batched time-series storage and query engine.
``repro.sim``
    Discrete-event simulation substrate: virtual clock, event queue,
    deterministic hash-based noise, continuous signals, traces.
``repro.host``
    Host substrate: virtual filesystem, POSIX-like permissions, nodes,
    clusters.
``repro.runtime``
    MPI-like SPMD runtime with an interconnect cost model.
``repro.workloads``
    Phase-based workload models (MMPS, Gaussian elimination, NOOP,
    vector-add, fixed-runtime toy).
``repro.bgq`` / ``repro.rapl`` / ``repro.nvml`` / ``repro.xeonphi``
    The four vendor device simulators.
``repro.core``
    MonEQ and the unified capability matrix (Table I).
``repro.baselines``
    Simplified PAPI / TAU / PowerPack comparator collectors.
``repro.analysis``
    Trace statistics, energy integration, boxplots, comparisons.
``repro.experiments``
    One module per paper table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
