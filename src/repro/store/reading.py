"""The shared normalized sensor record.

Every vendor read path — BG/Q EMON and the environmental database's BPM
metering, RAPL, NVML, and the three Xeon Phi paths — historically leaked
its own tuple/dict shape into ``store`` and ``analysis`` consumers.  A
:class:`Reading` normalizes them to one record: *when* it was sampled,
*where* (the vendor location or device label), *which mechanism*
produced it, and the field → value mapping the mechanism reported.

The record is deliberately dumb: adapters at the edges (``EnvRecord``
in :mod:`repro.bgq.envdb`, ``Backend.read_reading`` in
:mod:`repro.core.moneq.backend`) translate legacy shapes without the
storage or analysis layers special-casing per-platform formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class Reading:
    """One normalized sensor record.

    Parameters
    ----------
    timestamp:
        Virtual time the values were sampled at (seconds).
    location:
        Vendor location string (``R00-M0-N00-BPM``) or device label
        (``mic0-daemon``, ``K20#0``).
    mechanism:
        The collection mechanism that produced the record — one of the
        ``mechanism`` label values in
        :data:`repro.obs.instruments.VENDOR_MECHANISMS`, or ``envdb``
        for environmental-database rows.
    values:
        Field name → float value, in the mechanism's column order.
    """

    timestamp: float
    location: str
    mechanism: str
    values: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.location:
            raise ConfigError("Reading needs a non-empty location")
        if not self.mechanism:
            raise ConfigError("Reading needs a non-empty mechanism")

    def value(self, name: str) -> float:
        """One field's value; raises :class:`ConfigError` when absent."""
        try:
            return self.values[name]
        except KeyError:
            raise ConfigError(
                f"reading at {self.location!r} has no field {name!r}; "
                f"have {sorted(self.values)}"
            ) from None

    def with_values(self, **values: float) -> "Reading":
        """A copy with extra/overridden fields (adapters use this)."""
        merged = dict(self.values)
        merged.update(values)
        return Reading(self.timestamp, self.location, self.mechanism, merged)
