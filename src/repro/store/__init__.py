"""``repro.store`` — the sharded, write-batched time-series data plane.

The paper's BG/Q finding is that the environmental database is
capacity-bound by a single server (§II-A).  This package is the
fleet-scale answer while keeping the paper's semantics: records shard
by location prefix across N independent stores, each carrying the
single-server ingest ceiling (``n_shards=1`` *is* the paper's server),
writes batch per polling sweep, and a downsampled-aggregate cache makes
repeated range queries O(windows) instead of O(records).

* :mod:`repro.store.reading` — the shared :class:`Reading` record all
  vendor read paths normalize to;
* :mod:`repro.store.shards` — deterministic location-prefix sharding;
* :mod:`repro.store.batcher` — per-sweep write batching;
* :mod:`repro.store.aggregate` — the per-shard min/mean/max window cache;
* :mod:`repro.store.planner` — shard routing + cache-use planning;
* :mod:`repro.store.engine` — :class:`ShardedStore` with the
  ``range`` / ``prefix`` / ``aggregate`` / ``latest`` / ``tail``
  query API (``tail`` resumes from a :class:`TailBatch` cursor);
* :mod:`repro.store.federation` — :class:`FederatedStore` routing N
  sites' stores behind one ``site/location`` API, merging site-local
  partial aggregates centrally and resharding saturated sites.

:mod:`repro.bgq.envdb` routes its storage through this package; the
``repro store bench`` CLI subcommand exercises it end to end.
"""

from __future__ import annotations

from repro.store.aggregate import (
    Aggregate,
    AggregateCache,
    merge_partials,
    window_index,
)
from repro.store.batcher import WriteBatcher
from repro.store.engine import FlushReport, ShardedStore, TailBatch
from repro.store.federation import FederatedQueryPlan, FederatedStore
from repro.store.planner import QUERY_KINDS, QueryPlan, plan_query
from repro.store.reading import Reading
from repro.store.shards import ShardMap, shard_key

__all__ = [
    "Aggregate",
    "AggregateCache",
    "FederatedQueryPlan",
    "FederatedStore",
    "FlushReport",
    "QUERY_KINDS",
    "QueryPlan",
    "Reading",
    "ShardMap",
    "ShardedStore",
    "TailBatch",
    "WriteBatcher",
    "merge_partials",
    "plan_query",
    "shard_key",
    "window_index",
]
