"""Location-prefix sharding.

Records shard by the leading component of their location string — the
rack (``R07``) for BG/Q locations like ``R07-M1-N03-BPM``, the hostname
stem for cluster nodes — so all sensors of one rack/midplane land on
the same shard and the common "one board/rack over a window" query
touches exactly one shard.  The mapping is deterministic (CRC-32 of the
shard key), so a store rebuilt from the same records always places them
identically.
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigError

#: Separator between location components (IBM convention: R07-M1-N03).
LOCATION_SEPARATOR = "-"


def shard_key(location: str, depth: int = 1) -> str:
    """The part of a location that decides its shard: the first
    ``depth`` ``-``-separated components (rack, or rack-midplane at
    depth 2)."""
    return LOCATION_SEPARATOR.join(location.split(LOCATION_SEPARATOR)[:depth])


class ShardMap:
    """Deterministic location → shard assignment.

    Parameters
    ----------
    n_shards:
        Number of independent stores.  1 reproduces the paper's single
        DB2 server.
    depth:
        How many location components form the shard key (1 = rack).
    """

    def __init__(self, n_shards: int = 1, depth: int = 1):
        if n_shards <= 0:
            raise ConfigError(f"shard count must be positive, got {n_shards}")
        if depth <= 0:
            raise ConfigError(f"shard key depth must be positive, got {depth}")
        self.n_shards = int(n_shards)
        self.depth = int(depth)

    def shard_of(self, location: str) -> int:
        """The shard index a location's records live on."""
        if self.n_shards == 1:
            return 0
        key = shard_key(location, self.depth)
        return zlib.crc32(key.encode("utf-8")) % self.n_shards

    def shards_for_prefix(self, location_prefix: str) -> list[int]:
        """Shards a location-prefix query must visit.

        When the prefix pins the whole shard key (it contains at least
        ``depth`` complete components), only that key's shard can hold
        matches.  A partial first component (``R0`` matches ``R00`` and
        ``R01``) or an empty prefix conservatively fans out to every
        shard.
        """
        if self.n_shards == 1:
            return [0]
        parts = location_prefix.split(LOCATION_SEPARATOR)
        # The depth-th component is complete only if a separator (or
        # more components) follows it.
        if len(parts) > self.depth:
            return [self.shard_of(location_prefix)]
        return list(range(self.n_shards))
