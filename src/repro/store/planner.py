"""Query planning for the sharded store.

A plan answers two questions before any shard is touched: *which
shards* must participate (from the location prefix and the shard map)
and *whether the aggregate cache applies* (only ``aggregate`` queries
read downsampled windows; raw queries always scan the sorted record
lists).  Plans are cheap value objects — the CLI prints them, tests
assert on them, and the engine executes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.store.shards import ShardMap

#: Query kinds the engine executes.
QUERY_KINDS = ("range", "prefix", "aggregate", "latest", "tail")


@dataclass(frozen=True)
class QueryPlan:
    """An executable description of one store query."""

    kind: str
    table: str
    shards: tuple[int, ...]
    location_prefix: str
    uses_cache: bool

    @property
    def fan_out(self) -> int:
        """How many shards the query touches."""
        return len(self.shards)


def plan_query(kind: str, table: str, shard_map: ShardMap,
               location_prefix: str = "") -> QueryPlan:
    """Build the plan for one query.

    A prefix that pins the shard key routes to a single shard; anything
    looser fans out to every shard and merges.
    """
    if kind not in QUERY_KINDS:
        raise ConfigError(f"unknown query kind {kind!r}; have {QUERY_KINDS}")
    return QueryPlan(
        kind=kind,
        table=table,
        shards=tuple(shard_map.shards_for_prefix(location_prefix)),
        location_prefix=location_prefix,
        uses_cache=kind == "aggregate",
    )
