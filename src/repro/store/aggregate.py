"""Downsampled-aggregate cache.

Repeated range queries over full-Mira data are the envdb's dominant
read load (every figure regeneration scans the same windows).  Instead
of re-reducing O(records) per query, each shard keeps min/mean/max
per (location, window) per field, built lazily from one scan and
invalidated when the shard ingests — so a repeated aggregate query
costs O(matching windows) dictionary lookups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.instruments import (
    STORE_CACHE_HITS,
    STORE_CACHE_INVALIDATIONS,
    STORE_CACHE_MISSES,
)
from repro.store.reading import Reading


@dataclass(frozen=True)
class Aggregate:
    """One downsampled window for one location and field."""

    location: str
    field: str
    window_start: float
    window_s: float
    count: int
    minimum: float
    maximum: float
    total: float

    @property
    def mean(self) -> float:
        return self.total / self.count

    @property
    def window_end(self) -> float:
        return self.window_start + self.window_s


def window_index(timestamp: float, window_s: float) -> int:
    """The downsampling window a timestamp falls in."""
    return int(math.floor(timestamp / window_s))


def merge_partials(partials: list[Aggregate],
                   location: str | None = None) -> list[Aggregate]:
    """Merge per-site partial aggregates into combined windows.

    The federated aggregate plan: every site reduces its own records
    with :meth:`ShardedStore.aggregate`, only the O(windows) partials
    travel, and the center combines them here — counts and totals add,
    minima and maxima fold.  With ``location`` set, every partial is
    relabeled to it first (the fleet-wide rollup); otherwise partials
    merge per location.  Output is sorted by (window_start, location),
    the same order the store's own aggregate queries produce.
    """
    merged: dict[tuple[str, str, float, float], list] = {}
    for part in partials:
        loc = location if location is not None else part.location
        key = (loc, part.field, float(part.window_s), part.window_start)
        acc = merged.get(key)
        if acc is None:
            merged[key] = [part.count, part.minimum, part.maximum, part.total]
        else:
            acc[0] += part.count
            if part.minimum < acc[1]:
                acc[1] = part.minimum
            if part.maximum > acc[2]:
                acc[2] = part.maximum
            acc[3] += part.total
    out = [
        Aggregate(location=loc, field=field_name, window_start=start,
                  window_s=window_s, count=int(acc[0]), minimum=acc[1],
                  maximum=acc[2], total=acc[3])
        for (loc, field_name, window_s, start), acc in merged.items()
    ]
    out.sort(key=lambda a: (a.window_start, a.location, a.field))
    return out


class AggregateCache:
    """Per-shard cache of per-(location, window) field aggregates.

    One cache instance serves one shard.  Entries are keyed by
    ``(table, field, window_s)``; each entry maps location →
    window index → ``[count, min, max, total]``.  ``invalidate``
    drops a table's entries (called on ingest into the shard).
    """

    def __init__(self):
        self._entries: dict[tuple[str, str, float],
                            dict[str, dict[int, list[float]]]] = {}

    def invalidate(self, table: str) -> None:
        """Drop cached windows for one table (after ingest)."""
        stale = [key for key in self._entries if key[0] == table]
        for key in stale:
            del self._entries[key]
        if stale:
            STORE_CACHE_INVALIDATIONS.inc(len(stale))

    def windows(self, table: str, field: str, window_s: float,
                records: list[Reading]) -> dict[str, dict[int, list[float]]]:
        """The (location → window → accumulator) map for one keying,
        building it from ``records`` on a miss."""
        if window_s <= 0.0:
            raise ConfigError(f"window must be positive, got {window_s}")
        key = (table, field, float(window_s))
        built = self._entries.get(key)
        if built is not None:
            STORE_CACHE_HITS.inc()
            return built
        STORE_CACHE_MISSES.inc()
        built = {}
        for reading in records:
            value = reading.values.get(field)
            if value is None:
                continue
            idx = window_index(reading.timestamp, window_s)
            by_window = built.setdefault(reading.location, {})
            acc = by_window.get(idx)
            if acc is None:
                by_window[idx] = [1, value, value, value]
            else:
                acc[0] += 1
                if value < acc[1]:
                    acc[1] = value
                if value > acc[2]:
                    acc[2] = value
                acc[3] += value
        self._entries[key] = built
        return built

    @staticmethod
    def select(built: dict[str, dict[int, list[float]]], field: str,
               window_s: float, t0: float, t1: float,
               location_prefix: str) -> list[Aggregate]:
        """Materialize the aggregates intersecting ``[t0, t1]`` for
        locations matching ``location_prefix``."""
        lo = window_index(t0, window_s)
        hi = window_index(t1, window_s)
        out: list[Aggregate] = []
        for location, by_window in built.items():
            if not location.startswith(location_prefix):
                continue
            for idx in range(lo, hi + 1):
                acc = by_window.get(idx)
                if acc is None:
                    continue
                out.append(Aggregate(
                    location=location, field=field,
                    window_start=idx * window_s, window_s=window_s,
                    count=int(acc[0]), minimum=acc[1], maximum=acc[2],
                    total=acc[3],
                ))
        return out
