"""The sharded, write-batched time-series store.

The paper's environmental database is capacity-bound: one DB2 server
absorbs every sweep, so the polling interval cannot shrink without
"the resulting volume of data alone exceed[ing] the server's processing
capacity" (§II-A).  :class:`ShardedStore` keeps that ceiling — but
*per shard*: records shard by location prefix (rack/midplane) across N
independent stores, each with the single-server ingest budget, so
``n_shards=1`` reproduces the paper's server exactly and N=16 sustains
a full-Mira sweep at the 60 s minimum interval.

Reads go through a planned, concurrent query API — ``range``,
``prefix``, ``aggregate`` (cache-backed downsampling), ``latest`` —
that merges per-shard sorted runs deterministically: results are
ordered by (timestamp, global ingest sequence), byte-identical to the
seed envdb's flat record list at any shard count.
"""

from __future__ import annotations

import heapq
import math
import threading
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.instruments import (
    STORE_BATCHES,
    STORE_DROPPED,
    STORE_QUERIES,
    STORE_QUERY_ROWS,
    STORE_RECORDS,
)
from repro.store.aggregate import Aggregate, AggregateCache
from repro.store.planner import QueryPlan, plan_query
from repro.store.reading import Reading
from repro.store.shards import ShardMap

_INF = float("inf")


@dataclass(frozen=True)
class FlushReport:
    """Accounting for one capacity-enforced batch ingest."""

    interval_s: float
    offered: int
    accepted: int
    dropped: int
    offered_by_shard: dict[int, int]
    dropped_by_shard: dict[int, int]

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class TailBatch:
    """One page of a tail: fresh records plus the resume cursor.

    ``cursor`` is a global ingest-sequence watermark: pass it back to
    :meth:`ShardedStore.tail` to receive only records ingested after
    this batch was taken.  Cursors are value objects — they survive
    across queries, streams and (serialized) service clients.
    """

    readings: tuple[Reading, ...]
    cursor: int

    def __len__(self) -> int:
        return len(self.readings)


class _ShardTable:
    """One table's sorted run on one shard: (timestamp, seq) order.

    Beside the time-ordered run, the table keeps an *ingest-ordered*
    log (by global sequence number) so tail cursors can resume exactly
    where they left off regardless of record timestamps — late-arriving
    backfills still reach a tailing consumer.
    """

    __slots__ = ("keys", "records", "latest", "log_seqs", "log_records")

    def __init__(self):
        self.keys: list[tuple[float, int]] = []
        self.records: list[Reading] = []
        self.latest: dict[str, Reading] = {}
        self.log_seqs: list[int] = []
        self.log_records: list[Reading] = []

    def insert(self, reading: Reading, seq: int) -> None:
        key = (reading.timestamp, seq)
        idx = bisect_left(self.keys, key)
        self.keys.insert(idx, key)
        self.records.insert(idx, reading)
        newest = self.latest.get(reading.location)
        if newest is None or reading.timestamp >= newest.timestamp:
            self.latest[reading.location] = reading
        # Sequence numbers are allocated under the store's global lock
        # but inserted under the shard's, so a concurrent writer can
        # land out of order here; the common case is a pure append.
        if self.log_seqs and seq < self.log_seqs[-1]:
            pos = bisect_left(self.log_seqs, seq)
            self.log_seqs.insert(pos, seq)
            self.log_records.insert(pos, reading)
        else:
            self.log_seqs.append(seq)
            self.log_records.append(reading)

    def slice(self, t0: float, t1: float) -> tuple[list[tuple[float, int]],
                                                   list[Reading]]:
        lo = bisect_left(self.keys, (t0,))
        hi = bisect_left(self.keys, (t1, _INF))
        return self.keys[lo:hi], self.records[lo:hi]

    def tail_slice(self, cursor: int) -> tuple[list[int], list[Reading]]:
        """Log entries with sequence number >= ``cursor``, ingest order."""
        lo = bisect_left(self.log_seqs, cursor)
        return self.log_seqs[lo:], self.log_records[lo:]


class _Shard:
    """One independent store: tables, lock, cache, ingest accounting."""

    __slots__ = ("index", "tables", "lock", "cache", "records_ingested",
                 "records_dropped")

    def __init__(self, index: int, table_names: tuple[str, ...]):
        self.index = index
        self.tables = {name: _ShardTable() for name in table_names}
        self.lock = threading.Lock()
        self.cache = AggregateCache()
        self.records_ingested = 0
        self.records_dropped = 0


class ShardedStore:
    """N location-sharded stores behind one query API.

    Parameters
    ----------
    tables:
        Table names records may be ingested into.
    n_shards:
        Independent stores; 1 (the default) models the paper's single
        DB2 server.
    capacity_records_per_s:
        Per-shard ingest ceiling applied on the batched
        (:meth:`ingest_batch`) path; ``None`` disables enforcement.
        Direct :meth:`ingest` is never capacity-limited — it models
        out-of-band inserts, and the parity tests use it.
    shard_depth:
        Location components forming the shard key (1 = rack).
    parallel:
        Fan multi-shard range/aggregate scans out on a thread pool.
        Results are identical either way; per-shard locks make the
        store safe for concurrent readers regardless.
    """

    def __init__(self, tables: tuple[str, ...], n_shards: int = 1,
                 capacity_records_per_s: float | None = None,
                 shard_depth: int = 1, parallel: bool = False):
        if not tables:
            raise ConfigError("store needs at least one table")
        if capacity_records_per_s is not None and capacity_records_per_s <= 0:
            raise ConfigError(
                f"capacity must be positive, got {capacity_records_per_s}"
            )
        self.table_names = tuple(tables)
        self.shard_map = ShardMap(n_shards, depth=shard_depth)
        self.capacity_records_per_s = capacity_records_per_s
        self.parallel = bool(parallel)
        self._shards = [_Shard(i, self.table_names) for i in range(n_shards)]
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._batches_flushed = 0
        self._dropped_carryover = 0
        self._executor: ThreadPoolExecutor | None = None
        self._record_children = {
            i: STORE_RECORDS.labels(str(i)) for i in range(n_shards)
        }
        self._dropped_children = {
            i: STORE_DROPPED.labels(str(i)) for i in range(n_shards)
        }

    # -- ingest ----------------------------------------------------------------

    def ingest(self, table: str, reading: Reading) -> None:
        """Insert one record, bypassing capacity enforcement."""
        shard = self._shards[self.shard_map.shard_of(reading.location)]
        self._insert(shard, self._check_table(table), reading)

    def ingest_batch(self, items: list[tuple[str, Reading]],
                     interval_s: float) -> FlushReport:
        """Insert one sweep's records with per-shard capacity accounting.

        Each shard absorbs at most ``capacity_records_per_s *
        interval_s`` records per sweep; the overflow — the tail of that
        shard's batch, in offered order — is dropped and accounted to
        the shard that saturated.
        """
        if interval_s <= 0.0:
            raise ConfigError(f"sweep interval must be positive, got {interval_s}")
        budget = None
        if self.capacity_records_per_s is not None:
            budget = int(math.floor(self.capacity_records_per_s * interval_s))

        # Insert in offered order (so merged query results stay
        # byte-identical to an unsharded flat list); each shard accepts
        # at most its per-sweep budget and drops its overflow tail.
        offered_by_shard: dict[int, int] = {}
        dropped_by_shard: dict[int, int] = {}
        accepted = 0
        for table, reading in items:
            self._check_table(table)
            index = self.shard_map.shard_of(reading.location)
            offered_by_shard[index] = offered_by_shard.get(index, 0) + 1
            if budget is not None and offered_by_shard[index] > budget:
                dropped_by_shard[index] = dropped_by_shard.get(index, 0) + 1
                continue
            self._insert(self._shards[index], table, reading)
            accepted += 1
        for index, dropped in dropped_by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                shard.records_dropped += dropped
            self._dropped_children[index].inc(dropped)
        self._batches_flushed += 1
        STORE_BATCHES.inc()
        return FlushReport(
            interval_s=interval_s,
            offered=len(items),
            accepted=accepted,
            dropped=len(items) - accepted,
            offered_by_shard=offered_by_shard,
            dropped_by_shard=dropped_by_shard,
        )

    def _insert(self, shard: _Shard, table: str, reading: Reading) -> None:
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        with shard.lock:
            shard.tables[table].insert(reading, seq)
            shard.records_ingested += 1
            shard.cache.invalidate(table)
        self._record_children[shard.index].inc()

    # -- queries ---------------------------------------------------------------

    def plan(self, kind: str, table: str,
             location_prefix: str = "") -> QueryPlan:
        """The plan a query of this shape would execute."""
        return plan_query(kind, self._check_table(table), self.shard_map,
                          location_prefix)

    def range(self, table: str, t0: float, t1: float,
              location_prefix: str = "") -> list[Reading]:
        """Records in ``[t0, t1]`` matching the prefix, in (timestamp,
        ingest order) — the seed envdb's exact ordering."""
        self._check_window(t0, t1)
        plan = self.plan("range", table, location_prefix)
        runs = self._scan_shards(plan, t0, t1)
        if len(runs) == 1:
            out = [r for _, r in runs[0]]
        else:
            out = [r for _, r in heapq.merge(*runs, key=lambda pair: pair[0])]
        if location_prefix:
            out = [r for r in out if r.location.startswith(location_prefix)]
        STORE_QUERIES.labels("range").inc()
        STORE_QUERY_ROWS.inc(len(out))
        return out

    def prefix(self, table: str, location_prefix: str) -> list[Reading]:
        """Every record for a location prefix, across all time."""
        out = self.range(table, -_INF, _INF, location_prefix)
        STORE_QUERIES.labels("prefix").inc()
        return out

    def latest(self, table: str, location_prefix: str = "") -> dict[str, Reading]:
        """The most recent record per matching location."""
        plan = self.plan("latest", table, location_prefix)
        out: dict[str, Reading] = {}
        for index in plan.shards:
            shard = self._shards[index]
            with shard.lock:
                for location, reading in shard.tables[table].latest.items():
                    if location.startswith(location_prefix):
                        out[location] = reading
        STORE_QUERIES.labels("latest").inc()
        STORE_QUERY_ROWS.inc(len(out))
        return out

    def aggregate(self, table: str, field_name: str, t0: float, t1: float,
                  window_s: float, location_prefix: str = "") -> list[Aggregate]:
        """Downsampled min/mean/max per location per ``window_s`` window
        intersecting ``[t0, t1]`` — served from the per-shard aggregate
        cache (built on first use, invalidated on ingest)."""
        self._check_window(t0, t1)
        plan = self.plan("aggregate", table, location_prefix)

        def one_shard(index: int) -> list[Aggregate]:
            shard = self._shards[index]
            with shard.lock:
                built = shard.cache.windows(
                    table, field_name, window_s, shard.tables[table].records
                )
                return AggregateCache.select(
                    built, field_name, window_s, t0, t1, location_prefix
                )

        parts = self._map_shards(one_shard, plan.shards)
        out = [agg for part in parts for agg in part]
        out.sort(key=lambda a: (a.window_start, a.location))
        STORE_QUERIES.labels("aggregate").inc()
        STORE_QUERY_ROWS.inc(len(out))
        return out

    def tail(self, table: str, cursor: int = 0, location_prefix: str = "",
             limit: int | None = None) -> TailBatch:
        """Records ingested at or after ``cursor`` (a global ingest
        sequence number), in ingest order, merged across shards.

        Returns a :class:`TailBatch` whose ``cursor`` resumes the tail:
        ``tail(table, batch.cursor)`` yields only records ingested
        after ``batch`` was taken.  ``cursor=0`` starts from the first
        record ever ingested; ``limit`` caps the page size (the
        streaming endpoint polls in bounded pages).
        """
        if cursor < 0:
            raise ConfigError(f"tail cursor must be >= 0, got {cursor}")
        if limit is not None and limit < 1:
            raise ConfigError(f"tail limit must be >= 1, got {limit}")
        plan = self.plan("tail", table, location_prefix)

        def one_shard(index: int):
            shard = self._shards[index]
            with shard.lock:
                seqs, records = shard.tables[table].tail_slice(cursor)
            return list(zip(seqs, records))

        runs = self._map_shards(one_shard, plan.shards)
        merged = runs[0] if len(runs) == 1 else heapq.merge(
            *runs, key=lambda pair: pair[0])
        out: list[Reading] = []
        next_cursor = cursor
        for seq, reading in merged:
            if location_prefix and not reading.location.startswith(
                    location_prefix):
                next_cursor = seq + 1
                continue
            if limit is not None and len(out) >= limit:
                break
            out.append(reading)
            next_cursor = seq + 1
        STORE_QUERIES.labels("tail").inc()
        STORE_QUERY_ROWS.inc(len(out))
        return TailBatch(readings=tuple(out), cursor=next_cursor)

    @property
    def ingest_cursor(self) -> int:
        """The cursor one past the newest ingested record — start a
        tail here to receive only records ingested from now on."""
        with self._seq_lock:
            return self._seq

    def _scan_shards(self, plan: QueryPlan, t0: float, t1: float):
        def one_shard(index: int):
            shard = self._shards[index]
            with shard.lock:
                keys, records = shard.tables[plan.table].slice(t0, t1)
            return list(zip(keys, records))

        return self._map_shards(one_shard, plan.shards)

    def _map_shards(self, fn, shards: tuple[int, ...]) -> list:
        if self.parallel and len(shards) > 1:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(len(self._shards), 8),
                    thread_name_prefix="repro-store",
                )
            return list(self._executor.map(fn, shards))
        return [fn(index) for index in shards]

    # -- rebalancing -----------------------------------------------------------

    def reshard(self, n_shards: int) -> None:
        """Rebuild the store over ``n_shards`` shards, replaying every
        record in its original ingest order.

        This is the saturation escape hatch: when a site's sweep exceeds
        one shard's ingest budget, the federation re-spreads the same
        location keyspace over more independent stores.  Records keep
        their original global sequence numbers, so range/tail ordering
        and open cursors are unaffected — only the placement changes.
        """
        if n_shards < 1:
            raise ConfigError(f"need at least one shard, got {n_shards}")
        if n_shards == len(self._shards):
            return
        replay: list[tuple[int, str, Reading]] = []
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                for name, table in shard.tables.items():
                    replay.extend(
                        (seq, name, reading)
                        for seq, reading in zip(table.log_seqs,
                                                table.log_records)
                    )
                dropped += shard.records_dropped
        replay.sort(key=lambda item: item[0])

        self.shard_map = ShardMap(n_shards, depth=self.shard_map.depth)
        self._shards = [_Shard(i, self.table_names) for i in range(n_shards)]
        self._record_children = {
            i: STORE_RECORDS.labels(str(i)) for i in range(n_shards)
        }
        self._dropped_children = {
            i: STORE_DROPPED.labels(str(i)) for i in range(n_shards)
        }
        # Drops happened against the *old* layout; keep the total honest
        # without pinning them to a shard that no longer exists.
        self._dropped_carryover += dropped
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # Replay without touching STORE_RECORDS: these records were
        # already counted when they first ingested.
        for seq, name, reading in replay:
            shard = self._shards[self.shard_map.shard_of(reading.location)]
            with shard.lock:
                shard.tables[name].insert(reading, seq)
                shard.records_ingested += 1

    # -- capacity accounting ---------------------------------------------------

    def sweep_load(self, locations: list[str],
                   interval_s: float) -> dict[int, float]:
        """Per-shard load fraction for a sweep writing one record per
        location at a given interval (no records are ingested)."""
        if interval_s <= 0.0:
            raise ConfigError(f"sweep interval must be positive, got {interval_s}")
        if self.capacity_records_per_s is None:
            return {shard.index: 0.0 for shard in self._shards}
        counts: dict[int, int] = {}
        for location in locations:
            index = self.shard_map.shard_of(location)
            counts[index] = counts.get(index, 0) + 1
        budget = self.capacity_records_per_s * interval_s
        return {index: count / budget for index, count in counts.items()}

    def capacity_fraction(self, locations: list[str],
                          interval_s: float) -> float:
        """The hottest shard's load fraction for such a sweep — the
        store's feasibility measure (>1 means dropped records)."""
        load = self.sweep_load(locations, interval_s)
        return max(load.values(), default=0.0)

    # -- accounting views ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def batches_flushed(self) -> int:
        return self._batches_flushed

    @property
    def records_ingested(self) -> int:
        return sum(shard.records_ingested for shard in self._shards)

    @property
    def dropped_records(self) -> int:
        return (self._dropped_carryover
                + sum(shard.records_dropped for shard in self._shards))

    @property
    def records_by_shard(self) -> dict[int, int]:
        return {s.index: s.records_ingested for s in self._shards}

    @property
    def dropped_by_shard(self) -> dict[int, int]:
        return {s.index: s.records_dropped for s in self._shards}

    # -- helpers ---------------------------------------------------------------

    def _check_table(self, table: str) -> str:
        if table not in self.table_names:
            raise ConfigError(
                f"no table {table!r}; have {list(self.table_names)}"
            )
        return table

    def _check_window(self, t0: float, t1: float) -> None:
        if t1 < t0:
            raise ConfigError(f"query window inverted: [{t0}, {t1}]")
