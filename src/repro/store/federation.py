"""The federated fleet store: N sites' sharded stores behind one API.

A *site* is one cluster's :class:`~repro.store.engine.ShardedStore`
(its own ingest budget, its own shard map); the federation routes
queries by a ``site/location`` prefix convention and merges per-site
results deterministically.  Aggregates follow the scatter-gather plan
the paper's single-server ceiling forces at fleet scale: every site
reduces its *own* records with the store's cached ``aggregate`` and
only the O(windows) partials travel to the center, where
:func:`~repro.store.aggregate.merge_partials` folds them — counts and
totals add, minima and maxima fold — into per-location or fleet-wide
rollup windows.

When a site's sweep saturates its ingest ceiling, :meth:`rebalance`
re-spreads that site's keyspace over more shards (powers of two until
the hottest shard clears the budget with headroom), replaying records
in original ingest order so query results never change shape.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.instruments import (
    FLEET_PARTIALS_MERGED,
    FLEET_QUERIES,
    FLEET_RESHARDS,
)
from repro.store.aggregate import Aggregate, merge_partials
from repro.store.engine import ShardedStore
from repro.store.planner import QueryPlan
from repro.store.reading import Reading

#: Separator between the site name and the site-local location in
#: federated location strings (site names themselves use ``-``).
SITE_SEPARATOR = "/"

#: The location all partials merge into for a fleet-wide rollup.
FLEET_LOCATION = "fleet"


@dataclass(frozen=True)
class FederatedQueryPlan:
    """How one federated aggregate executes: per-site store plans plus
    the central merge step."""

    kind: str
    table: str
    per_site: dict[str, QueryPlan]
    rollup: bool

    @property
    def fan_out(self) -> int:
        """Total shards touched across every routed site."""
        return sum(len(plan.shards) for plan in self.per_site.values())


class FederatedStore:
    """N named sites behind one query API.

    Parameters
    ----------
    sites:
        Site name → that site's :class:`ShardedStore`.  Names must be
        non-empty, free of the ``/`` separator, and every site must
        carry the same table set (one fleet-wide schema).
    """

    def __init__(self, sites: dict[str, ShardedStore]):
        if not sites:
            raise ConfigError("federation needs at least one site")
        tables: tuple[str, ...] | None = None
        for name, store in sites.items():
            if not name or SITE_SEPARATOR in name:
                raise ConfigError(
                    f"bad site name {name!r}: non-empty, no "
                    f"{SITE_SEPARATOR!r}")
            if tables is None:
                tables = store.table_names
            elif store.table_names != tables:
                raise ConfigError(
                    f"site {name!r} tables {store.table_names} differ from "
                    f"{tables} — the federation needs one schema")
        self.sites = dict(sites)
        self.table_names = tables

    # -- routing ---------------------------------------------------------------

    def _route(self, location_prefix: str) -> list[tuple[str, str]]:
        """``(site name, site-local prefix)`` pairs a federated prefix
        fans out to, in sorted site order (the merge tiebreak).

        ``"site/R07"`` pins one site; ``"site"`` (no separator) matches
        sites by name prefix; ``""`` fans out to the whole fleet.
        """
        if not location_prefix:
            return [(name, "") for name in sorted(self.sites)]
        head, sep, rest = location_prefix.partition(SITE_SEPARATOR)
        if sep:
            if head not in self.sites:
                raise ConfigError(
                    f"no site {head!r}; have {sorted(self.sites)}")
            return [(head, rest)]
        routed = [(name, "") for name in sorted(self.sites)
                  if name.startswith(head)]
        if not routed:
            raise ConfigError(
                f"no site matches {head!r}; have {sorted(self.sites)}")
        return routed

    @staticmethod
    def _label(site: str, location: str) -> str:
        return f"{site}{SITE_SEPARATOR}{location}"

    # -- queries ---------------------------------------------------------------

    def range(self, table: str, t0: float, t1: float,
              location_prefix: str = "") -> list[Reading]:
        """Records in ``[t0, t1]`` across the routed sites, relabeled
        ``site/location``, merged by timestamp (site order breaks
        ties)."""
        runs = []
        for name, local in self._route(location_prefix):
            rows = self.sites[name].range(table, t0, t1, local)
            runs.append([
                Reading(r.timestamp, self._label(name, r.location),
                        r.mechanism, r.values)
                for r in rows
            ])
        FLEET_QUERIES.labels("range").inc()
        if len(runs) == 1:
            return runs[0]
        return list(heapq.merge(*runs, key=lambda r: r.timestamp))

    def latest(self, table: str,
               location_prefix: str = "") -> dict[str, Reading]:
        """The most recent record per location, keyed ``site/location``."""
        out: dict[str, Reading] = {}
        for name, local in self._route(location_prefix):
            for location, reading in self.sites[name].latest(
                    table, local).items():
                out[self._label(name, location)] = Reading(
                    reading.timestamp, self._label(name, location),
                    reading.mechanism, reading.values)
        FLEET_QUERIES.labels("latest").inc()
        return out

    def aggregate(self, table: str, field_name: str, t0: float, t1: float,
                  window_s: float, location_prefix: str = "",
                  rollup: bool = False) -> list[Aggregate]:
        """Downsampled windows across the routed sites.

        Each site computes its own cached partials; the center merges.
        ``rollup=False`` keeps per-location windows (relabeled
        ``site/location``); ``rollup=True`` folds everything into one
        fleet-wide window series at location ``"fleet"``.
        """
        partials: list[Aggregate] = []
        for name, local in self._route(location_prefix):
            for agg in self.sites[name].aggregate(
                    table, field_name, t0, t1, window_s, local):
                partials.append(Aggregate(
                    location=self._label(name, agg.location),
                    field=agg.field, window_start=agg.window_start,
                    window_s=agg.window_s, count=agg.count,
                    minimum=agg.minimum, maximum=agg.maximum,
                    total=agg.total,
                ))
        FLEET_QUERIES.labels("aggregate").inc()
        if rollup:
            FLEET_PARTIALS_MERGED.inc(len(partials))
            return merge_partials(partials, location=FLEET_LOCATION)
        partials.sort(key=lambda a: (a.window_start, a.location))
        return partials

    def aggregate_plan(self, table: str, location_prefix: str = "",
                       rollup: bool = False) -> FederatedQueryPlan:
        """The scatter-gather plan a federated aggregate would execute."""
        per_site = {
            name: self.sites[name].plan("aggregate", table, local)
            for name, local in self._route(location_prefix)
        }
        return FederatedQueryPlan(kind="federated_aggregate", table=table,
                                  per_site=per_site, rollup=rollup)

    # -- rebalancing -----------------------------------------------------------

    def rebalance(self, site: str, locations: list[str], interval_s: float,
                  headroom: float = 0.9, max_shards: int = 64) -> int:
        """Reshard one site until its hottest shard clears the sweep
        budget with ``headroom`` to spare.

        Shard counts double from the current count; returns the new
        count, or 0 when the current layout already fits (or the site
        has no capacity ceiling to saturate).  Raises
        :class:`~repro.errors.ConfigError` if even ``max_shards`` can't
        absorb the sweep — the keyspace itself is too hot (one rack
        exceeding a whole server's budget needs a finer shard key, not
        more shards).
        """
        store = self.sites.get(site)
        if store is None:
            raise ConfigError(f"no site {site!r}; have {sorted(self.sites)}")
        if store.capacity_records_per_s is None:
            return 0
        if store.capacity_fraction(locations, interval_s) <= headroom:
            return 0
        from repro.store.shards import ShardMap

        budget = store.capacity_records_per_s * interval_s
        n = store.n_shards
        while True:
            n *= 2
            if n > max_shards:
                raise ConfigError(
                    f"site {site!r} sweep saturates even {max_shards} "
                    f"shards — shard key too coarse for this keyspace")
            candidate = ShardMap(n, depth=store.shard_map.depth)
            counts: dict[int, int] = {}
            for location in locations:
                index = candidate.shard_of(location)
                counts[index] = counts.get(index, 0) + 1
            if max(counts.values(), default=0) <= headroom * budget:
                break
        store.reshard(n)
        FLEET_RESHARDS.labels(site).inc()
        return n

    # -- accounting ------------------------------------------------------------

    @property
    def site_names(self) -> list[str]:
        return sorted(self.sites)

    @property
    def records_ingested(self) -> int:
        return sum(store.records_ingested for store in self.sites.values())

    @property
    def dropped_records(self) -> int:
        return sum(store.dropped_records for store in self.sites.values())
