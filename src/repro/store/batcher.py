"""Per-sweep write batching.

The seed envdb inserted every record individually, paying a sorted
insert (and a cache invalidation, once the aggregate cache existed) per
record.  Pollers now stage a whole sweep in a :class:`WriteBatcher` and
flush once: one capacity-accounting pass, one batch metric increment,
and the shard sees the sweep as a unit — which is also what makes the
per-shard ingest budget (records per sweep) well-defined.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.instruments import STORE_BATCH_RECORDS
from repro.store.engine import FlushReport, ShardedStore
from repro.store.reading import Reading


class WriteBatcher:
    """Stages (table, reading) pairs and flushes them as one batch."""

    def __init__(self, store: ShardedStore):
        self.store = store
        self._staged: list[tuple[str, Reading]] = []

    def __len__(self) -> int:
        return len(self._staged)

    def add(self, table: str, reading: Reading) -> None:
        """Stage one record for the next flush."""
        self._staged.append((table, reading))

    def flush(self, interval_s: float) -> FlushReport:
        """Ingest everything staged as one capacity-accounted batch.

        The batcher is reusable after the flush; flushing an empty
        batcher is an error (a poller that swept nothing is a bug).
        """
        if not self._staged:
            raise ConfigError("flush of an empty write batch")
        staged, self._staged = self._staged, []
        STORE_BATCH_RECORDS.observe(len(staged))
        return self.store.ingest_batch(staged, interval_s)
