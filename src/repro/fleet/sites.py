"""Fleet topology: named sites over a federated store.

A :class:`FleetSite` is one cluster — a :class:`~repro.bgq.machine
.BgqMachine` with its own virtual clock, poller and sharded
environmental store.  A :class:`Fleet` federates the sites' stores
behind one :class:`~repro.store.FederatedStore` (queries route by the
``site/location`` prefix convention) and owns the operational loop:
advance every site's clock, account sweeps/records per site, and
reshard any site whose sweep saturates its ingest ceiling.

Sites are deterministic: :func:`build_fleet` derives every site's RNG
from one fleet seed, so equal seeds build byte-identical fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgq.envdb import EnvironmentalDatabase
from repro.bgq.machine import MIRA_RACKS, BgqMachine
from repro.errors import ConfigError
from repro.obs.instruments import FLEET_RECORDS, FLEET_SWEEPS
from repro.sim.rng import RngRegistry, derive_seed
from repro.store import FederatedStore, ShardedStore

DEFAULT_FLEET_SEED = 0xF1EE7


@dataclass
class FleetSite:
    """One named cluster in the fleet."""

    name: str
    machine: BgqMachine
    #: Per-site accounting watermarks (what the fleet metrics counted).
    _polls_seen: int = field(default=0, repr=False)
    _records_seen: int = field(default=0, repr=False)

    @property
    def envdb(self) -> EnvironmentalDatabase:
        return self.machine.envdb

    @property
    def store(self) -> ShardedStore:
        return self.machine.envdb.store


class Fleet:
    """N sites behind one federation, advanced in lockstep."""

    def __init__(self, sites: list[FleetSite]):
        if not sites:
            raise ConfigError("fleet needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate site names: {sorted(names)}")
        self.sites = {site.name: site for site in sites}
        self.federation = FederatedStore(
            {site.name: site.store for site in sites})

    def site(self, name: str) -> FleetSite:
        try:
            return self.sites[name]
        except KeyError:
            raise ConfigError(
                f"no site {name!r}; have {sorted(self.sites)}") from None

    # -- operation -------------------------------------------------------------

    def advance_to(self, t: float) -> None:
        """Run every site's event queue (pollers included) to virtual
        time ``t``, accounting completed sweeps and ingested records to
        the per-site fleet metrics."""
        for name, site in self.sites.items():
            site.machine.advance_to(t)
            polls = site.envdb.polls_completed
            records = site.store.records_ingested
            if polls > site._polls_seen:
                FLEET_SWEEPS.labels(name).inc(polls - site._polls_seen)
                site._polls_seen = polls
            if records > site._records_seen:
                FLEET_RECORDS.labels(name).inc(records - site._records_seen)
                site._records_seen = records

    def rebalance_saturated(self, headroom: float = 0.9,
                            max_shards: int = 64) -> dict[str, int]:
        """Reshard every site whose sweep would exceed ``headroom`` of
        its hottest shard's ingest budget; returns site → new shard
        count for the sites that actually resharded."""
        resharded: dict[str, int] = {}
        for name, site in self.sites.items():
            n = self.federation.rebalance(
                name, site.envdb.sweep_locations(),
                site.envdb.poll_interval_s,
                headroom=headroom, max_shards=max_shards)
            if n:
                resharded[name] = n
        return resharded

    # -- accounting ------------------------------------------------------------

    @property
    def site_names(self) -> list[str]:
        return sorted(self.sites)

    @property
    def node_count(self) -> int:
        return sum(site.machine.node_count for site in self.sites.values())

    @property
    def records_ingested(self) -> int:
        return self.federation.records_ingested

    @property
    def dropped_records(self) -> int:
        return self.federation.dropped_records

    @property
    def sweeps_completed(self) -> int:
        return sum(site.envdb.polls_completed for site in self.sites.values())

    @property
    def shards_by_site(self) -> dict[str, int]:
        return {name: site.store.n_shards
                for name, site in sorted(self.sites.items())}


def build_fleet(n_sites: int = 10, racks: int = MIRA_RACKS,
                seed: int = DEFAULT_FLEET_SEED,
                poll_interval_s: float = 60.0,
                shards_per_site: int = 1) -> Fleet:
    """A fleet of ``n_sites`` identical-topology, independently-seeded
    Mira-class clusters — the ISSUE's 10×-Mira configuration by
    default, small configurations for tests."""
    if n_sites < 1:
        raise ConfigError(f"need at least one site, got {n_sites}")
    sites = []
    for i in range(n_sites):
        name = f"site{i:02d}"
        machine = BgqMachine(
            racks=racks,
            rng=RngRegistry(derive_seed(seed, f"fleet.{name}")),
            poll_interval_s=poll_interval_s,
            envdb_shards=shards_per_site,
        )
        sites.append(FleetSite(name=name, machine=machine))
    return Fleet(sites)
