"""``repro.fleet`` — federated multi-cluster fleet sweeps.

The paper profiles one machine at a time; a production deployment of
its mechanisms monitors *fleets* — N sites, each a Mira-class cluster
with its own environmental database and ingest ceiling.  This package
scales the reproduction out:

* :mod:`repro.fleet.sites` — :class:`FleetSite` (one named site's
  :class:`~repro.bgq.machine.BgqMachine`) and :class:`Fleet`, which
  federates every site's sharded store behind one
  :class:`~repro.store.FederatedStore` and reshards saturated sites
  before a sweep;
* :mod:`repro.fleet.sweep` — :func:`fleet_sweep` (the timed
  fleet-wide sweep with cross-site rollup aggregation) and
  :func:`fleet_bench`, which writes ``BENCH_fleet.json`` including the
  channel-cache crossings ablation.

``python -m repro fleet sweep`` drives it from the CLI.
"""

from __future__ import annotations

from repro.fleet.sites import DEFAULT_FLEET_SEED, Fleet, FleetSite, build_fleet
from repro.fleet.sweep import FleetSweepReport, cache_ablation, fleet_bench, fleet_sweep

__all__ = [
    "DEFAULT_FLEET_SEED",
    "Fleet",
    "FleetSite",
    "FleetSweepReport",
    "build_fleet",
    "cache_ablation",
    "fleet_bench",
    "fleet_sweep",
]
