"""Fleet sweeps and the fleet benchmark.

:func:`fleet_sweep` is the operational loop at fleet scale: reshard
saturated sites, advance every site through one polling-sweep horizon,
then fold the sites' partial aggregates into a fleet-wide rollup — the
scatter-gather plan that keeps the paper's single-server ceiling *per
site* while the center only ever sees O(windows) partials.

:func:`fleet_bench` writes ``BENCH_fleet.json``: the 10×-Mira 60 s
sweep with its wall-time figures, plus :func:`cache_ablation` — the
channel cache's crossings-saved measurement (K consumers sharing one
device at the paper-default poll rate, cache-on vs cache-off
byte-compared).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.bgq.machine import MIRA_RACKS
from repro.fleet.sites import DEFAULT_FLEET_SEED, Fleet, build_fleet

#: Rollup aggregation window for the sweep report (s).
ROLLUP_WINDOW_S = 30.0

#: Wall-time floor on the sweep, as a realtime factor: the fleet must
#: simulate at least this many virtual seconds per wall second
#: (locally ~1000x; 2x still means faster-than-the-hardware).  The CLI
#: and the smoke perf check both gate on it.
REALTIME_FLOOR = 2.0

#: Crossings-reduction floor for the cache ablation: the channel cache
#: must cut access-channel crossings at least this much on the
#: shared-device consumer pattern at the paper-default poll rate.
CACHE_REDUCTION_FLOOR = 5.0


@dataclass(frozen=True)
class FleetSweepReport:
    """Everything one timed fleet sweep produced."""

    sites: int
    racks: int
    duration_s: float
    wall_s: float
    sweeps: int
    records: int
    dropped: int
    #: Site → new shard count, for sites resharded before the sweep.
    reshards: dict[str, int]
    shards_by_site: dict[str, int]
    #: Fleet-wide rollup windows the federated aggregate produced.
    rollup_windows: int

    @property
    def realtime_factor(self) -> float:
        """Virtual seconds simulated per wall second."""
        return self.duration_s / self.wall_s if self.wall_s else float("inf")

    def summary_line(self) -> str:
        return (f"[repro fleet sweep] sites={self.sites} racks={self.racks} "
                f"duration_s={self.duration_s:.1f} wall_s={self.wall_s:.3f} "
                f"sweeps={self.sweeps} records={self.records} "
                f"dropped={self.dropped} reshards={len(self.reshards)} "
                f"shards={sum(self.shards_by_site.values())} "
                f"rollup_windows={self.rollup_windows} "
                f"realtime_x={self.realtime_factor:.1f}")


def fleet_sweep(fleet: Fleet | None = None, n_sites: int = 10,
                racks: int = MIRA_RACKS, duration_s: float = 60.0,
                poll_interval_s: float = 60.0,
                seed: int = DEFAULT_FLEET_SEED,
                rebalance: bool = True,
                window_s: float = ROLLUP_WINDOW_S) -> FleetSweepReport:
    """Run one timed fleet-wide sweep horizon.

    Builds the fleet if none is passed (``n_sites`` × ``racks``-rack
    Mira-class sites).  With ``rebalance`` on, sites whose sweep would
    saturate their ingest ceiling are resharded *before* the sweep —
    the 10×-Mira default at the 60 s minimum interval needs it, exactly
    as the paper's capacity arithmetic predicts.  The wall clock times
    the advance plus the federated rollup aggregate.
    """
    if fleet is None:
        fleet = build_fleet(n_sites=n_sites, racks=racks, seed=seed,
                            poll_interval_s=poll_interval_s)
    dropped_before = fleet.dropped_records
    records_before = fleet.records_ingested
    sweeps_before = fleet.sweeps_completed
    reshards = fleet.rebalance_saturated() if rebalance else {}

    poll = max(site.envdb.poll_interval_s for site in fleet.sites.values())
    horizon = duration_s + poll / 2.0
    t0 = time.perf_counter()
    fleet.advance_to(horizon)
    rollup = fleet.federation.aggregate(
        "bpm", "input_power_w", 0.0, horizon, window_s, rollup=True)
    wall_s = time.perf_counter() - t0

    return FleetSweepReport(
        sites=len(fleet.sites),
        racks=max(len(site.machine.racks) for site in fleet.sites.values()),
        duration_s=duration_s,
        wall_s=wall_s,
        sweeps=fleet.sweeps_completed - sweeps_before,
        records=fleet.records_ingested - records_before,
        dropped=fleet.dropped_records - dropped_before,
        reshards=reshards,
        shards_by_site=fleet.shards_by_site,
        rollup_windows=len(rollup),
    )


def cache_ablation(consumers: int = 8, ticks: int = 400,
                   seed: int = 0xCAC4E) -> dict:
    """Measure the channel cache on the fleet's canonical consumer
    pattern: ``consumers`` MonEQ agents polling one shared device at
    the mechanism's paper-default minimum interval (the CEEMS
    daemon-caching workload).

    The first consumer of each tick pays the device collection; every
    other consumer's freshness keys hit, so crossings shrink by ~the
    consumer count.  Outputs are byte-compared against an identical
    cache-disabled run — the cache must be invisible in the data.
    """
    from repro import testbeds
    from repro.core.moneq.backends import NvmlBackend
    from repro.core.moneq.config import MoneqConfig
    from repro.core.moneq.session import MoneqSession
    from repro.mech.cache import channel_cache, channel_cache_disabled
    from repro.workloads.vectoradd import VectorAddWorkload

    def run_once(disabled: bool):
        node, gpu, _ = testbeds.gpu_node(seed=seed)
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        backends = []
        for i in range(consumers):
            backend = NvmlBackend(gpu)
            backend.label = f"{backend.label}.{i}"
            backends.append(backend)
        poll = backends[0].min_interval_s
        queries_per_read = backends[0].spec.queries_per_read
        config = MoneqConfig(polling_interval_s=poll,
                             buffer_slots=ticks + 64, block_ticks=256)
        session = MoneqSession(backends, node.events, config=config,
                               vfs=node.vfs)
        horizon = ticks * poll + poll / 2.0
        if disabled:
            with channel_cache_disabled():
                node.events.run_until(horizon)
                result = session.finalize()
        else:
            node.events.run_until(horizon)
            result = session.finalize()
        files = {p: node.vfs.read_text(p) for p in result.output_paths}
        return files, queries_per_read

    cache = channel_cache()
    before = cache.stats()
    files_cached, queries_per_read = run_once(disabled=False)
    after = cache.stats()

    hits = after.hits - before.hits
    misses = after.misses - before.misses
    saved = after.crossings_saved - before.crossings_saved
    rows = hits + misses
    crossings_uncached = rows * queries_per_read
    crossings_cached = crossings_uncached - saved

    files_plain, _ = run_once(disabled=True)
    return {
        "consumers": consumers,
        "ticks": ticks,
        "rows": rows,
        "hit_rate": hits / rows if rows else 0.0,
        "crossings_uncached": crossings_uncached,
        "crossings_cached": crossings_cached,
        "crossings_reduction": (crossings_uncached / crossings_cached
                                if crossings_cached else float("inf")),
        "byte_identical": files_cached == files_plain,
    }


def fleet_bench(json_path: str | None = "BENCH_fleet.json",
                smoke: bool = False) -> dict:
    """The committed fleet benchmark: the 10×-Mira 60 s sweep plus the
    channel-cache crossings ablation.

    ``smoke=True`` shrinks the fleet (2 sites × 4 racks) for CI
    runners; smoke runs never overwrite the committed figures unless
    explicitly pointed at a path.
    """
    if smoke:
        report = fleet_sweep(n_sites=2, racks=4, duration_s=60.0)
        ablation = cache_ablation(consumers=8, ticks=200)
    else:
        report = fleet_sweep(n_sites=10, racks=MIRA_RACKS, duration_s=60.0)
        ablation = cache_ablation(consumers=8, ticks=400)
    results = {
        "fleet_sweep": {
            "wall_s": round(report.wall_s, 6),
            "speedup_vs_scalar": round(report.realtime_factor, 3),
            "sites": report.sites,
            "racks": report.racks,
            "sweeps": report.sweeps,
            "records": report.records,
            "dropped": report.dropped,
            "reshards": len(report.reshards),
            "shards": sum(report.shards_by_site.values()),
            "rollup_windows": report.rollup_windows,
        },
        "cache_ablation": {
            "hit_rate": round(ablation["hit_rate"], 4),
            "crossings_uncached": ablation["crossings_uncached"],
            "crossings_cached": ablation["crossings_cached"],
            "crossings_reduction": round(ablation["crossings_reduction"], 3),
            "byte_identical": ablation["byte_identical"],
        },
    }
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results
