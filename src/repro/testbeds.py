"""Ready-made simulated testbeds.

Factories assembling the hardware configurations the paper measures,
wired and ready for MonEQ: a RAPL workstation, a GPU node, a Xeon Phi
node with all three collection paths, a multi-accelerator node, and the
Stampede slice used for Figure 8.  Examples and benchmarks build on
these instead of re-plumbing devices by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.cluster import Cluster
from repro.host.kernel import Kernel
from repro.host.node import Node
from repro.nvml.api import NvmlLibrary
from repro.nvml.device import KEPLER_K20, GpuDevice, GpuModel
from repro.rapl.driver import install_msr_driver
from repro.rapl.package import SANDY_BRIDGE, SANDY_BRIDGE_EP, CpuModel, CpuPackage
from repro.sim.rng import RngRegistry
from repro.workloads.base import Workload
from repro.workloads.gaussian import GaussianEliminationWorkload
from repro.xeonphi.card import XEON_PHI_SE10P, PhiCard
from repro.xeonphi.ipmb import BaseboardManagementController, SmcIpmbResponder
from repro.xeonphi.micras import MicrasDaemon
from repro.xeonphi.scif import ScifNetwork
from repro.xeonphi.smc import SystemManagementController
from repro.xeonphi.sysmgmt import SysMgmtApi


def rapl_node(seed: int = 0x5EED, model: CpuModel = SANDY_BRIDGE,
              kernel: str = "2.6.32", hostname: str = "rapl-host",
              workload: Workload | None = None,
              workload_start: float = 5.0) -> tuple[Node, Workload]:
    """A workstation with one RAPL-capable socket and the msr driver
    loaded with read-only access granted (the paper's deployment).

    Returns (node, workload); the workload is scheduled on the socket
    but virtual time has not advanced yet.
    """
    node = Node(hostname, kernel=Kernel(kernel), rng=RngRegistry(seed))
    package = CpuPackage(model, rng=node.rng.fork("cpu0"))
    node.attach("cpu", package)
    install_msr_driver(node)
    driver = node.kernel.modprobe("msr")
    driver.grant_readonly_access()
    load = workload if workload is not None else GaussianEliminationWorkload()
    package.board.schedule(load, t_start=workload_start)
    return node, load


def gpu_node(seed: int = 0x5EED, model: GpuModel = KEPLER_K20,
             hostname: str = "gpu-host") -> tuple[Node, GpuDevice, NvmlLibrary]:
    """A node with one Kepler GPU and an initialized NVML library."""
    node = Node(hostname, rng=RngRegistry(seed))
    gpu = GpuDevice(model, rng=node.rng.fork("gpu0"), index=0)
    node.attach("gpu", gpu)
    nvml = NvmlLibrary(node)
    nvml.init()
    return node, gpu, nvml


@dataclass
class PhiRig:
    """One Phi card with every collection path wired."""

    node: Node
    card: PhiCard
    smc: SystemManagementController
    scif: ScifNetwork
    sysmgmt: SysMgmtApi
    micras: MicrasDaemon
    bmc: BaseboardManagementController


def phi_node(seed: int = 0x5EED, hostname: str = "phi-host") -> PhiRig:
    """A node with one Xeon Phi and the in-band, daemon and out-of-band
    paths all operational."""
    node = Node(hostname, rng=RngRegistry(seed))
    card = PhiCard(XEON_PHI_SE10P, rng=node.rng.fork("mic0"), mic_index=0,
                   clock=node.clock)
    node.attach("mic", card)
    smc = SystemManagementController(card)
    scif = ScifNetwork(node.clock, card_count=1)
    sysmgmt = SysMgmtApi(scif, card, smc)
    micras = MicrasDaemon(card, smc)
    micras.mount()
    node.attach("micras", micras)
    bmc = BaseboardManagementController(SmcIpmbResponder(smc, node.clock), node.clock)
    return PhiRig(node=node, card=card, smc=smc, scif=scif,
                  sysmgmt=sysmgmt, micras=micras, bmc=bmc)


def multi_device_node(seed: int = 0x5EED,
                      hostname: str = "hybrid-host") -> tuple[Node, PhiRig]:
    """A node carrying a CPU socket, a K20 *and* a Phi — the paper's
    'profiling is possible for both of these devices at the same time'
    configuration."""
    node = Node(hostname, rng=RngRegistry(seed))
    package = CpuPackage(SANDY_BRIDGE_EP, rng=node.rng.fork("cpu0"))
    node.attach("cpu", package)
    gpu = GpuDevice(KEPLER_K20, rng=node.rng.fork("gpu0"), index=0)
    node.attach("gpu", gpu)
    card = PhiCard(XEON_PHI_SE10P, rng=node.rng.fork("mic0"), mic_index=0,
                   clock=node.clock)
    node.attach("mic", card)
    smc = SystemManagementController(card)
    scif = ScifNetwork(node.clock, card_count=1)
    rig = PhiRig(
        node=node, card=card, smc=smc, scif=scif,
        sysmgmt=SysMgmtApi(scif, card, smc),
        micras=MicrasDaemon(card, smc),
        bmc=BaseboardManagementController(SmcIpmbResponder(smc, node.clock),
                                          node.clock),
    )
    rig.micras.mount()
    node.attach("micras", rig.micras)
    return node, rig


def fleet_node(seed: int = 0x5EED,
               hostname: str = "fleet-host",
               grant_msr_access: bool = True) -> tuple[Node, dict]:
    """One node carrying **every registered vendor path** — the whole
    mechanism fleet on a shared clock, in registry order.

    Returns ``(node, backends)`` where ``backends`` maps mechanism name
    to a live backend: an EMON node board, the three RAPL access paths
    over one Sandy Bridge-EP socket, NVML on a K20, and the Phi's
    in-band, daemon and out-of-band paths.  The chaos scenarios and the
    fleet-wide failure tests run their sessions on this rig.

    ``grant_msr_access=False`` skips the paper's chmod ritual, leaving
    ``/dev/cpu/*/msr`` root-only — credentialed reads of ``rapl_msr``
    by an unprivileged user then fail at the chardev gate (the service
    testbed uses this to exercise its 403 path).
    """
    from repro.bgq.emon import EmonInterface
    from repro.bgq.topology import NodeBoard
    from repro.core.moneq.backends import (
        BgqEmonBackend,
        NvmlBackend,
        PhiIpmbBackend,
        PhiMicrasBackend,
        PhiMicsmcBackend,
        PhiSysMgmtBackend,
        RaplMsrBackend,
        RaplPerfBackend,
        RaplPowercapBackend,
    )
    from repro.rapl.perf_event import PerfEventRapl
    from repro.rapl.powercap import install_powercap_driver

    node = Node(hostname, kernel=Kernel("3.14"), rng=RngRegistry(seed))
    package = CpuPackage(SANDY_BRIDGE_EP, rng=node.rng.fork("cpu0"))
    node.attach("cpu", package)
    install_msr_driver(node)
    driver = node.kernel.modprobe("msr")
    if grant_msr_access:
        driver.grant_readonly_access()
    install_powercap_driver(node)
    node.kernel.modprobe("intel_rapl")

    gpu = GpuDevice(KEPLER_K20, rng=node.rng.fork("gpu0"), index=0)
    node.attach("gpu", gpu)
    NvmlLibrary(node).init()

    card = PhiCard(XEON_PHI_SE10P, rng=node.rng.fork("mic0"), mic_index=0,
                   clock=node.clock)
    node.attach("mic", card)
    smc = SystemManagementController(card)
    scif = ScifNetwork(node.clock, card_count=1)
    micras = MicrasDaemon(card, smc)
    micras.mount()
    node.attach("micras", micras)

    board = NodeBoard("R00-M0-N00", node.rng.fork("bgq"))

    backends = {
        "emon": BgqEmonBackend(EmonInterface(board, node.clock)),
        "rapl_msr": RaplMsrBackend(package, label=f"{hostname}-socket0",
                                   node=node),
        "rapl_powercap": RaplPowercapBackend(node),
        "rapl_perf": RaplPerfBackend(PerfEventRapl(node, package)),
        "nvml": NvmlBackend(gpu),
        "sysmgmt": PhiSysMgmtBackend(SysMgmtApi(scif, card, smc)),
        "micras": PhiMicrasBackend(micras),
        "ipmb": PhiIpmbBackend(BaseboardManagementController(
            SmcIpmbResponder(smc, node.clock), node.clock)),
        "micsmc": PhiMicsmcBackend(smc),
    }
    return node, backends


def mechanism_backend(name: str, seed: int = 0x5EED):
    """A live backend for one registered mechanism, on its own testbed
    — the factory the registry-parametrized failure tests build from,
    so a newly declared :class:`~repro.mech.registry.MechanismSpec` is
    exercised without touching any hand-maintained list."""
    _, backends = fleet_node(seed=seed)  # imports register the fleet
    from repro.mech.registry import get

    get(name)  # unknown mechanisms fail loudly, naming the registry
    return backends[name]


def stampede_slice(cards: int = 128, seed: int = 0x5EED) -> Cluster:
    """The Figure 8 testbed: ``cards`` Stampede nodes, each with two
    Sandy Bridge-EP sockets and one Xeon Phi SE10P."""
    cluster = Cluster("stampede", rng=RngRegistry(seed))

    def factory(hostname, rng, clock):
        node = Node(hostname, rng=rng, clock=clock)
        for s in range(2):
            node.attach("cpu", CpuPackage(SANDY_BRIDGE_EP, rng=rng.fork(f"cpu{s}"),
                                          socket=s))
        card = PhiCard(XEON_PHI_SE10P, rng=rng.fork("mic0"), mic_index=0,
                       clock=clock)
        node.attach("mic", card)
        return node

    cluster.populate(cards, factory)
    return cluster
