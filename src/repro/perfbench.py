"""Wall-clock benches of the simulator's hot paths.

These measure the *simulator's* speed, not the modeled hardware: the
columnar block-sampling engine against per-tick scalar collection, and
the heap-scheduled launcher against the linear ``_pick_runnable``
reference.  ``python -m repro bench perf`` runs them and writes
``BENCH_moneq.json`` so future changes have a perf baseline to regress
against; ``benchmarks/bench_moneq_block.py`` and
``benchmarks/bench_runtime_perf.py`` assert the speedup floors.

Every bench returns a dict whose first two keys follow the trajectory
schema — ``{"wall_s": <optimized wall>, "speedup_vs_scalar": <x>}`` —
where "scalar" is the pre-optimization path (``block_ticks=1`` scalar
ticking, or ``scheduler="linear"``).  Extra keys carry bench-specific
detail for the CLI report and the benchmark asserts.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable

from repro.core import moneq
from repro.core.moneq.backends import NvmlBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.runtime.launcher import Launcher
from repro.runtime.ops import ANY_SOURCE, Compute, Recv, Send
from repro.runtime.programs import run_mmps
from repro.workloads.vectoradd import VectorAddWorkload

NVML_INTERVAL_S = 0.060


def _wall(fn: Callable[[], object]) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _nvml_session(agents: int, ticks: int, block_ticks: int, seed: int):
    """``agents`` NVML backends over one shared (cheap) GPU device, with
    just enough buffer for ``ticks`` records each."""
    from repro import testbeds

    node, gpu, _ = testbeds.gpu_node(seed=seed)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    backends = []
    for i in range(agents):
        backend = NvmlBackend(gpu)
        backend.label = f"{backend.label}.{i}"
        backends.append(backend)
    config = MoneqConfig(polling_interval_s=NVML_INTERVAL_S,
                         buffer_slots=ticks + 64, block_ticks=block_ticks)
    session = MoneqSession(backends, node.events, config=config, vfs=node.vfs)
    return node, session


def _nvml_outputs(agents: int, ticks: int, block_ticks: int, seed: int):
    node, session = _nvml_session(agents, ticks, block_ticks, seed)
    node.events.run_until(ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2)
    result = session.finalize()
    files = {p: node.vfs.read_text(p) for p in result.output_paths}
    return node.clock.now, result.overhead.ticks, files


def bench_moneq_block(agents: int = 1024, ticks: int = 10_000,
                      scalar_ticks: int = 100, seed: int = 0xB10C) -> dict:
    """The acceptance bench: a 1024-agent, 10k-tick NVML session in
    block mode versus the scalar tick loop (measured on a short slice
    and extrapolated — running 10M scalar reads outright is the very
    cost the engine removes).  Byte-identity is asserted on a reduced
    configuration where running both paths in full is cheap.

    Measured with the channel cache bypassed: the 1024 agents share
    one device, so cache hits would dominate both sides and the ratio
    would stop measuring the block engine (the cache's own win is
    :func:`repro.fleet.cache_ablation`'s figure, floored separately)."""
    from repro.mech.cache import channel_cache_disabled

    with channel_cache_disabled():
        horizon = ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2
        node, session = _nvml_session(agents, ticks, 4096, seed)
        wall_block, _ = _wall(lambda: node.events.run_until(horizon))
        if session.agents[0].count != ticks:
            raise AssertionError(
                f"block run collected {session.agents[0].count} ticks, "
                f"wanted {ticks}"
            )

        slice_horizon = scalar_ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2
        node, session = _nvml_session(agents, scalar_ticks, 1, seed)
        wall_slice, _ = _wall(lambda: node.events.run_until(slice_horizon))
        if session.agents[0].count != scalar_ticks:
            raise AssertionError(
                f"scalar slice collected {session.agents[0].count} ticks, "
                f"wanted {scalar_ticks}"
            )
        scalar_est = wall_slice * (ticks / scalar_ticks)

        byte_identical = (_nvml_outputs(8, 400, 1, seed)
                          == _nvml_outputs(8, 400, 4096, seed))
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": scalar_est / wall_block,
        "scalar_wall_s": scalar_est,
        "agents": agents,
        "ticks": ticks,
        "byte_identical": byte_identical,
    }


def bench_moneq_full_session(duration_s: float = 60.0, seed: int = 96) -> dict:
    """bench_runtime_perf's full-session profile (60 s RAPL at the 60 ms
    hardware minimum), block mode versus scalar ticking — both paths run
    in full here, so the speedup is measured, not extrapolated."""
    from repro import testbeds

    def profile(block_ticks: int):
        node, _ = testbeds.rapl_node(seed=seed)
        return moneq.profile_run(
            node, duration_s=duration_s,
            config=MoneqConfig(polling_interval_s=0.06, block_ticks=block_ticks),
        )

    wall_scalar, reference = _wall(lambda: profile(1))
    wall_block, result = _wall(lambda: profile(4096))
    if result.overhead.ticks != reference.overhead.ticks:
        raise AssertionError(
            f"block session ticked {result.overhead.ticks}, "
            f"scalar ticked {reference.overhead.ticks}"
        )
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": wall_scalar / wall_block,
        "scalar_wall_s": wall_scalar,
        "ticks": result.overhead.ticks,
    }


def bench_launcher_fanin(size: int = 4096, nbytes: int = 64,
                         reps: int = 3) -> dict:
    """The acceptance bench for the scheduler: an ANY_SOURCE fan-in of
    ``size`` ranks into rank 0 — the worst case for the seed's linear
    scan (O(n) rescan per step, O(n) source scan per receive).

    Best-of-``reps`` per scheduler: at the CI smoke size (512 ranks)
    the heap run is single-digit milliseconds, and one descheduling
    blip is enough to flip the measured ratio — the minimum wall is
    the one the scheduler actually earned."""
    import gc

    def program(ctx):
        if ctx.rank == 0:
            total = 0
            for _ in range(ctx.size - 1):
                total += yield Recv(source=ANY_SOURCE, tag=1)
            return total
        yield Compute(1e-6 * ((ctx.rank * 13) % 7 + 1))
        yield Send(dest=0, payload=ctx.rank, tag=1, nbytes=nbytes)

    gc.collect()
    wall_heap, heap = min(
        (_wall(lambda: Launcher(program, size=size, scheduler="heap").run())
         for _ in range(reps)), key=lambda pair: pair[0])
    wall_linear, linear = min(
        (_wall(lambda: Launcher(program, size=size, scheduler="linear").run())
         for _ in range(reps)), key=lambda pair: pair[0])
    if [r.value for r in heap] != [r.value for r in linear]:
        raise AssertionError("heap and linear schedulers diverged")
    return {
        "wall_s": wall_heap,
        "speedup_vs_scalar": wall_linear / wall_heap,
        "linear_wall_s": wall_linear,
        "ranks": size,
    }


def bench_launcher_mmps(ranks: int = 2, messages_per_rank: int = 2000) -> dict:
    """bench_runtime_perf's messaging bench: the shipping scheduler
    (``"auto"``) against the always-linear reference.  At 2 ranks the
    heap's push/pop bookkeeping used to *lose* to the two-line scan;
    ``auto`` guards that small-n regression by resolving to the scan
    below :data:`repro.runtime.launcher.AUTO_HEAP_MIN_RANKS` ranks."""
    import gc

    for scheduler in ("auto", "linear"):  # warm caches out of the timing
        run_mmps(ranks=ranks, messages_per_rank=50, scheduler=scheduler)
    gc.collect()  # don't bill a prior bench's garbage to this one
    # Best-of-3: at ~20 ms a run, single samples are noise-dominated.
    wall_auto, result = min(
        (_wall(lambda: run_mmps(ranks=ranks,
                                messages_per_rank=messages_per_rank,
                                scheduler="auto"))
         for _ in range(3)), key=lambda pair: pair[0])
    wall_linear, reference = min(
        (_wall(lambda: run_mmps(ranks=ranks,
                                messages_per_rank=messages_per_rank,
                                scheduler="linear"))
         for _ in range(3)), key=lambda pair: pair[0])
    if result.elapsed_s != reference.elapsed_s:
        raise AssertionError("schedulers produced different virtual timings")
    return {
        "wall_s": wall_auto,
        "speedup_vs_scalar": wall_linear / wall_auto,
        "linear_wall_s": wall_linear,
        "achieved_rate_per_rank": result.achieved_rate_per_rank,
    }


def bench_chaos_hotpath(rows: int = 200_000, reps: int = 5,
                        check_rows: int = 4_096, seed: int = 0xC4A0) -> dict:
    """Guard for the fault-injection seam: with no :class:`FaultPlan`
    active, ``Mechanism.read_block`` must stay a thin wrapper over the
    raw source collect — the chaos hook is one function call returning
    None, never per-row work.

    ``speedup_vs_scalar`` here is ``wall(source.collect) /
    wall(read_block)``: the fraction of a retry-free block read spent
    below the seam.  It sits near 1x when the wrapper is thin and
    collapses toward 0x if the disabled chaos path ever grows per-row
    overhead — the floor catches exactly that regression.  Byte-identity
    of a zero-rate active plan against the disabled path is asserted on
    a reduced grid.
    """
    import numpy as np

    from repro import testbeds
    from repro.chaos.faults import FaultPlan, FaultRule
    from repro.mech.cache import channel_cache_disabled

    node, gpu, _ = testbeds.gpu_node(seed=seed)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    backend = NvmlBackend(gpu)
    times = np.arange(rows, dtype=np.float64) * NVML_INTERVAL_S

    with channel_cache_disabled():
        # The channel cache would turn the re-timed reads into pure
        # lookups; this bench measures the chaos seam, so it runs on
        # the uncached path (the cache has its own ablation bench).
        backend.read_block(times)  # warm both paths out of the timing
        wall_block = min(_wall(lambda: backend.read_block(times))[0]
                         for _ in range(reps))
        wall_collect = min(_wall(lambda: backend.source.collect(times))[0]
                           for _ in range(reps))

        check_times = times[:check_rows]
        disabled = backend.read_block(check_times)
        zero_plan = FaultPlan(seed=seed, rules=(FaultRule("nvml", rate=0.0),))
        with zero_plan.active():
            wall_zero, under_plan = _wall(
                lambda: backend.read_block(check_times))
    if under_plan.tobytes() != disabled.tobytes():
        raise AssertionError(
            "zero-rate fault plan changed read_block bytes")
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": wall_collect / wall_block,
        "collect_wall_s": wall_collect,
        "zero_rate_wall_s": wall_zero,
        "rows": rows,
        "byte_identical": True,
    }


def bench_service_smoke(racks: int = 8, shards: int = 8,
                        requests: int = 100, sweeps: int = 16) -> dict:
    """The monitoring service at CI-smoke scale: mixed queries through
    the in-process WSGI client against a populated sharded envdb.

    ``speedup_vs_scalar`` is the aggregate cache's cold-build vs
    warm-hit per-query ratio *measured through the whole HTTP stack*
    (dispatch, auth, planning, JSON) — the service-level face of the
    store-level cached-aggregate speedup.  The committed full-size
    figures live in ``BENCH_service.json`` (``python -m repro service
    bench``), not in the moneq trajectory file.
    """
    from repro.service.loadgen import bench_service

    return bench_service(racks=racks, shards=shards, requests=requests,
                         sweeps=sweeps)


def bench_fleet_smoke() -> dict:
    """The fleet layer at CI-smoke scale: a 2-site sweep through the
    federated store plus the channel-cache crossings ablation.

    ``speedup_vs_scalar`` is the sweep's realtime factor (virtual
    seconds simulated per wall second) — the fleet-scale face of the
    block-sampling speedups above.  The ablation's invariants (the
    cache must cut channel crossings >=5x on the shared-device consumer
    pattern *and* stay byte-invisible in the MonEQ outputs) are
    asserted here, not floored: they are correctness, not speed.  The
    committed full-size figures live in ``BENCH_fleet.json``.
    """
    from repro.fleet import fleet_bench
    from repro.fleet.sweep import CACHE_REDUCTION_FLOOR

    results = fleet_bench(json_path=None, smoke=True)
    sweep = results["fleet_sweep"]
    ablation = results["cache_ablation"]
    if not ablation["byte_identical"]:
        raise AssertionError("channel cache changed MonEQ output bytes")
    if ablation["crossings_reduction"] < CACHE_REDUCTION_FLOOR:
        raise AssertionError(
            f"channel cache cut crossings only "
            f"{ablation['crossings_reduction']:.1f}x, wanted "
            f">={CACHE_REDUCTION_FLOOR:g}x")
    return {
        "wall_s": sweep["wall_s"],
        "speedup_vs_scalar": sweep["speedup_vs_scalar"],
        "sites": sweep["sites"],
        "records": sweep["records"],
        "cache_reduction": ablation["crossings_reduction"],
        "byte_identical": ablation["byte_identical"],
    }


def bench_pack_overhead(pack: str = "phi-micsmc", reps: int = 3) -> dict:
    """Dispatch overhead of the scenario-pack layer: ``run_pack``
    (resolve the catalog manifest, validate, compile, dispatch) versus
    the same compiled spec run straight through the engine.

    ``speedup_vs_scalar`` is ``wall(engine only) / wall(run_pack)`` —
    ~1.0 when the pack layer is thin (locally ~0.95+, i.e. the manifest
    layer adds under 5% to a direct engine run).  Both sides run
    ``jobs=1`` with the cache off so the measured work is the live
    session itself; the floor catches the pack layer growing per-run
    work (re-validation in a loop, manifest re-reads, O(catalog)
    scans)."""
    from repro.exec.engine import Engine
    from repro.packs import catalog
    from repro.packs import run as pack_run

    raw = catalog.raw_pack(pack)
    spec, _ = pack_run.compile_spec(raw)

    def engine_only():
        Engine(jobs=1, cache=False).run([spec.exp_id])

    def through_packs():
        pack_run.run_pack(pack, jobs=1, cache=False)

    engine_only()  # warm imports and testbed caches out of the timing
    through_packs()
    wall_engine = min(_wall(engine_only)[0] for _ in range(reps))
    wall_pack = min(_wall(through_packs)[0] for _ in range(reps))
    return {
        "wall_s": wall_pack,
        "speedup_vs_scalar": wall_engine / wall_pack,
        "engine_wall_s": wall_engine,
        "pack": pack,
    }


#: Bench name -> zero-argument callable, in report order.
ALL_BENCHES: dict[str, Callable[[], dict]] = {
    "moneq_block": bench_moneq_block,
    "moneq_full_session": bench_moneq_full_session,
    "launcher_fanin_4096": bench_launcher_fanin,
    "launcher_mmps": bench_launcher_mmps,
    "chaos_hotpath": bench_chaos_hotpath,
}

#: Reduced-size profile for CI smoke runs: same benches, small enough
#: to finish in seconds on a shared runner.  Smoke results are never
#: written to the trajectory file — the committed numbers measure the
#: full profile.
SMOKE_BENCHES: dict[str, Callable[[], dict]] = {
    "moneq_block": lambda: bench_moneq_block(agents=64, ticks=1_000,
                                             scalar_ticks=50),
    "moneq_full_session": lambda: bench_moneq_full_session(duration_s=10.0),
    "launcher_fanin_4096": lambda: bench_launcher_fanin(size=512),
    "launcher_mmps": lambda: bench_launcher_mmps(messages_per_rank=400),
    "chaos_hotpath": lambda: bench_chaos_hotpath(rows=50_000, reps=3),
    "service": bench_service_smoke,
    "fleet": bench_fleet_smoke,
    "pack_overhead": bench_pack_overhead,
}

#: Absolute speedup floors a smoke check enforces.  Deliberately far
#: below locally-measured values: a shared CI runner is noisy, and the
#: check exists to catch an optimization being *undone* (speedups
#: collapsing to ~1x), not to benchmark the runner.
SMOKE_FLOORS: dict[str, float] = {
    "moneq_block": 3.0,
    "moneq_full_session": 2.0,
    "launcher_fanin_4096": 1.5,
    # chaos_hotpath's ratio is collect/read_block (<= ~1 by definition):
    # 0.25 means a retry-free read spends at least a quarter of its wall
    # below the fault-injection seam — per-row chaos overhead on the
    # disabled path would push it far under.
    "chaos_hotpath": 0.25,
    # service's ratio is the aggregate cache cold/warm through the HTTP
    # stack (~2.5x measured; the store-level ~85x is mostly absorbed by
    # dispatch + JSON).  1.5x still separates a live cache from a dead
    # one (ratio ~1x).
    "service": 1.5,
    # fleet's ratio is the sweep realtime factor (virtual s / wall s);
    # ~1000x measured locally, 2x still means the federated sweep runs
    # faster than the machines it models.
    "fleet": 2.0,
    # pack_overhead's ratio is engine-only/run_pack (<= ~1 by
    # definition): locally ~0.95+ (the manifest layer adds <5% to a
    # direct engine run); 0.80 still separates a thin dispatch from a
    # pack layer doing per-run heavy lifting.
    "pack_overhead": 0.80,
}

#: Relative slack allowed when re-measuring a committed speedup.  Wide
#: because these are single-shot wall-clock measurements on shared
#: machines; the check is for *regressions* (an optimization undone),
#: not run-to-run jitter.
CHECK_TOLERANCE = 0.30

#: Where the committed smoke trajectory lives (see
#: :func:`run_smoke_trajectory`).
SMOKE_TRAJECTORY_PATH = "BENCH_smoke.json"

#: Floor on the relative slack a smoke re-measurement gets against the
#: committed smoke median.  Wide by design — a shared CI runner under
#: load halves speedups without anything regressing; benches whose
#: committed spread is larger get ``2 x spread`` instead (see
#: :func:`_smoke_relative_failures`).
SMOKE_RELATIVE_TOLERANCE = 0.50


def check(json_path: str = "BENCH_moneq.json",
          tolerance: float = CHECK_TOLERANCE,
          smoke: bool = False,
          ) -> tuple[list[str], dict[str, dict]]:
    """Re-run every bench and compare against the committed trajectory.

    Returns ``(failures, fresh_results)`` where each failure names a
    bench whose fresh ``speedup_vs_scalar`` fell more than ``tolerance``
    below the committed value (or that disappeared from the suite).
    The committed file is never rewritten by a check.

    With ``smoke=True`` the reduced :data:`SMOKE_BENCHES` profile runs
    instead, held to the absolute :data:`SMOKE_FLOORS` *and* — when a
    committed :data:`SMOKE_TRAJECTORY_PATH` exists — to relative floors
    against its per-bench medians (``json_path`` names the full-profile
    trajectory and is ignored in smoke mode).  The absolute floors
    catch an optimization being undone outright; the relative check
    catches the slow bleed the wide absolute floors would wave through.
    """
    if smoke:
        results = run(json_path=None, benches=SMOKE_BENCHES)
        failures = [
            f"{name}: smoke speedup "
            f"{results[name]['speedup_vs_scalar']:.3f}x below the "
            f"{floor:.1f}x floor"
            for name, floor in SMOKE_FLOORS.items()
            if results[name]["speedup_vs_scalar"] < floor
        ]
        failures.extend(_smoke_relative_failures(results))
        return failures, results
    with open(json_path, encoding="utf-8") as fh:
        committed = json.load(fh)
    results = run(json_path=None)
    failures: list[str] = []
    for name, entry in committed.items():
        fresh = results.get(name)
        if fresh is None:
            failures.append(f"{name}: in {json_path} but no longer benched")
            continue
        floor = entry["speedup_vs_scalar"] * (1.0 - tolerance)
        if fresh["speedup_vs_scalar"] < floor:
            failures.append(
                f"{name}: speedup {fresh['speedup_vs_scalar']:.3f}x fell "
                f"below {floor:.3f}x (committed "
                f"{entry['speedup_vs_scalar']:.3f}x - {tolerance:.0%})")
    return failures, results


def _smoke_relative_failures(
        results: dict[str, dict],
        trajectory_path: str = SMOKE_TRAJECTORY_PATH) -> list[str]:
    """Relative regressions against the committed smoke trajectory.

    The committed file records each smoke bench's median speedup over
    back-to-back repetitions plus its observed relative spread
    ``(max - min) / median`` — the runner-variance characterization
    :func:`run_smoke_trajectory` measured.  A fresh smoke speedup must
    stay within ``max(SMOKE_RELATIVE_TOLERANCE, 2 x spread)`` of the
    committed median (capped at 90% so the floor stays positive):
    benches the runner measures stably get a tight bound, noisy ones a
    loose one.  No committed file means no relative check.
    """
    try:
        with open(trajectory_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        return []
    failures: list[str] = []
    for name, entry in committed["benches"].items():
        fresh = results.get(name)
        if fresh is None:
            failures.append(
                f"{name}: in {trajectory_path} but no longer smoke-benched")
            continue
        slack = min(0.90, max(SMOKE_RELATIVE_TOLERANCE,
                              2.0 * entry.get("spread", 0.0)))
        floor = entry["speedup_vs_scalar"] * (1.0 - slack)
        if fresh["speedup_vs_scalar"] < floor:
            failures.append(
                f"{name}: smoke speedup "
                f"{fresh['speedup_vs_scalar']:.3f}x fell below "
                f"{floor:.3f}x (committed median "
                f"{entry['speedup_vs_scalar']:.3f}x - {slack:.0%})")
    return failures


def run_smoke_trajectory(json_path: str | None = SMOKE_TRAJECTORY_PATH,
                         reps: int = 3) -> tuple[dict, dict[str, dict]]:
    """Measure the smoke profile ``reps`` times and write the smoke
    trajectory file: per bench the median ``wall_s`` and
    ``speedup_vs_scalar`` plus the relative spread ``(max - min) /
    median`` across the repetitions.

    The spread *is* the runner-variance characterization: committed
    from the same class of machine CI runs on, it tells
    ``check(smoke=True)`` how much slack each bench needs before a
    low reading means regression rather than noise.  Returns
    ``(trajectory, last_results)`` — the latter the final repetition's
    full bench dicts, for reporting.
    """
    samples: dict[str, list[dict]] = {name: [] for name in SMOKE_BENCHES}
    results: dict[str, dict] = {}
    for _ in range(max(1, reps)):
        results = run(json_path=None, benches=SMOKE_BENCHES)
        for name, r in results.items():
            samples[name].append(r)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    benches: dict[str, dict] = {}
    for name, runs_ in samples.items():
        speeds = [r["speedup_vs_scalar"] for r in runs_]
        mid = median(speeds)
        spread = (max(speeds) - min(speeds)) / mid if mid else 0.0
        benches[name] = {
            "wall_s": round(median([r["wall_s"] for r in runs_]), 6),
            "speedup_vs_scalar": round(mid, 3),
            "spread": round(spread, 3),
        }
    trajectory = {"reps": max(1, reps), "benches": benches}
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return trajectory, results


def run(json_path: str | None = "BENCH_moneq.json",
        benches: dict[str, Callable[[], dict]] | None = None,
        ) -> dict[str, dict]:
    """Run every bench; write the trajectory file (bench name ->
    ``{wall_s, speedup_vs_scalar}``) unless ``json_path`` is None."""
    if benches is None:
        benches = ALL_BENCHES
    results = {name: fn() for name, fn in benches.items()}
    if json_path is not None:
        trajectory = {
            name: {
                "wall_s": round(r["wall_s"], 6),
                "speedup_vs_scalar": round(r["speedup_vs_scalar"], 3),
            }
            for name, r in results.items()
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results
