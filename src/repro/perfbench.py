"""Wall-clock benches of the simulator's hot paths.

These measure the *simulator's* speed, not the modeled hardware: the
columnar block-sampling engine against per-tick scalar collection, and
the heap-scheduled launcher against the linear ``_pick_runnable``
reference.  ``python -m repro bench perf`` runs them and writes
``BENCH_moneq.json`` so future changes have a perf baseline to regress
against; ``benchmarks/bench_moneq_block.py`` and
``benchmarks/bench_runtime_perf.py`` assert the speedup floors.

Every bench returns a dict whose first two keys follow the trajectory
schema — ``{"wall_s": <optimized wall>, "speedup_vs_scalar": <x>}`` —
where "scalar" is the pre-optimization path (``block_ticks=1`` scalar
ticking, or ``scheduler="linear"``).  Extra keys carry bench-specific
detail for the CLI report and the benchmark asserts.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable

from repro.core import moneq
from repro.core.moneq.backends import NvmlBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.runtime.launcher import Launcher
from repro.runtime.ops import ANY_SOURCE, Compute, Recv, Send
from repro.runtime.programs import run_mmps
from repro.workloads.vectoradd import VectorAddWorkload

NVML_INTERVAL_S = 0.060


def _wall(fn: Callable[[], object]) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _nvml_session(agents: int, ticks: int, block_ticks: int, seed: int):
    """``agents`` NVML backends over one shared (cheap) GPU device, with
    just enough buffer for ``ticks`` records each."""
    from repro import testbeds

    node, gpu, _ = testbeds.gpu_node(seed=seed)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    backends = []
    for i in range(agents):
        backend = NvmlBackend(gpu)
        backend.label = f"{backend.label}.{i}"
        backends.append(backend)
    config = MoneqConfig(polling_interval_s=NVML_INTERVAL_S,
                         buffer_slots=ticks + 64, block_ticks=block_ticks)
    session = MoneqSession(backends, node.events, config=config, vfs=node.vfs)
    return node, session


def _nvml_outputs(agents: int, ticks: int, block_ticks: int, seed: int):
    node, session = _nvml_session(agents, ticks, block_ticks, seed)
    node.events.run_until(ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2)
    result = session.finalize()
    files = {p: node.vfs.read_text(p) for p in result.output_paths}
    return node.clock.now, result.overhead.ticks, files


def bench_moneq_block(agents: int = 1024, ticks: int = 10_000,
                      scalar_ticks: int = 100, seed: int = 0xB10C) -> dict:
    """The acceptance bench: a 1024-agent, 10k-tick NVML session in
    block mode versus the scalar tick loop (measured on a short slice
    and extrapolated — running 10M scalar reads outright is the very
    cost the engine removes).  Byte-identity is asserted on a reduced
    configuration where running both paths in full is cheap."""
    horizon = ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2
    node, session = _nvml_session(agents, ticks, 4096, seed)
    wall_block, _ = _wall(lambda: node.events.run_until(horizon))
    if session.agents[0].count != ticks:
        raise AssertionError(
            f"block run collected {session.agents[0].count} ticks, wanted {ticks}"
        )

    slice_horizon = scalar_ticks * NVML_INTERVAL_S + NVML_INTERVAL_S / 2
    node, session = _nvml_session(agents, scalar_ticks, 1, seed)
    wall_slice, _ = _wall(lambda: node.events.run_until(slice_horizon))
    if session.agents[0].count != scalar_ticks:
        raise AssertionError(
            f"scalar slice collected {session.agents[0].count} ticks, "
            f"wanted {scalar_ticks}"
        )
    scalar_est = wall_slice * (ticks / scalar_ticks)

    byte_identical = (_nvml_outputs(8, 400, 1, seed)
                      == _nvml_outputs(8, 400, 4096, seed))
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": scalar_est / wall_block,
        "scalar_wall_s": scalar_est,
        "agents": agents,
        "ticks": ticks,
        "byte_identical": byte_identical,
    }


def bench_moneq_full_session(duration_s: float = 60.0, seed: int = 96) -> dict:
    """bench_runtime_perf's full-session profile (60 s RAPL at the 60 ms
    hardware minimum), block mode versus scalar ticking — both paths run
    in full here, so the speedup is measured, not extrapolated."""
    from repro import testbeds

    def profile(block_ticks: int):
        node, _ = testbeds.rapl_node(seed=seed)
        return moneq.profile_run(
            node, duration_s=duration_s,
            config=MoneqConfig(polling_interval_s=0.06, block_ticks=block_ticks),
        )

    wall_scalar, reference = _wall(lambda: profile(1))
    wall_block, result = _wall(lambda: profile(4096))
    if result.overhead.ticks != reference.overhead.ticks:
        raise AssertionError(
            f"block session ticked {result.overhead.ticks}, "
            f"scalar ticked {reference.overhead.ticks}"
        )
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": wall_scalar / wall_block,
        "scalar_wall_s": wall_scalar,
        "ticks": result.overhead.ticks,
    }


def bench_launcher_fanin(size: int = 4096, nbytes: int = 64) -> dict:
    """The acceptance bench for the scheduler: an ANY_SOURCE fan-in of
    ``size`` ranks into rank 0 — the worst case for the seed's linear
    scan (O(n) rescan per step, O(n) source scan per receive)."""

    def program(ctx):
        if ctx.rank == 0:
            total = 0
            for _ in range(ctx.size - 1):
                total += yield Recv(source=ANY_SOURCE, tag=1)
            return total
        yield Compute(1e-6 * ((ctx.rank * 13) % 7 + 1))
        yield Send(dest=0, payload=ctx.rank, tag=1, nbytes=nbytes)

    wall_heap, heap = _wall(lambda: Launcher(program, size=size,
                                             scheduler="heap").run())
    wall_linear, linear = _wall(lambda: Launcher(program, size=size,
                                                 scheduler="linear").run())
    if [r.value for r in heap] != [r.value for r in linear]:
        raise AssertionError("heap and linear schedulers diverged")
    return {
        "wall_s": wall_heap,
        "speedup_vs_scalar": wall_linear / wall_heap,
        "linear_wall_s": wall_linear,
        "ranks": size,
    }


def bench_launcher_mmps(ranks: int = 2, messages_per_rank: int = 2000) -> dict:
    """bench_runtime_perf's messaging bench: the shipping scheduler
    (``"auto"``) against the always-linear reference.  At 2 ranks the
    heap's push/pop bookkeeping used to *lose* to the two-line scan;
    ``auto`` guards that small-n regression by resolving to the scan
    below :data:`repro.runtime.launcher.AUTO_HEAP_MIN_RANKS` ranks."""
    import gc

    for scheduler in ("auto", "linear"):  # warm caches out of the timing
        run_mmps(ranks=ranks, messages_per_rank=50, scheduler=scheduler)
    gc.collect()  # don't bill a prior bench's garbage to this one
    # Best-of-3: at ~20 ms a run, single samples are noise-dominated.
    wall_auto, result = min(
        (_wall(lambda: run_mmps(ranks=ranks,
                                messages_per_rank=messages_per_rank,
                                scheduler="auto"))
         for _ in range(3)), key=lambda pair: pair[0])
    wall_linear, reference = min(
        (_wall(lambda: run_mmps(ranks=ranks,
                                messages_per_rank=messages_per_rank,
                                scheduler="linear"))
         for _ in range(3)), key=lambda pair: pair[0])
    if result.elapsed_s != reference.elapsed_s:
        raise AssertionError("schedulers produced different virtual timings")
    return {
        "wall_s": wall_auto,
        "speedup_vs_scalar": wall_linear / wall_auto,
        "linear_wall_s": wall_linear,
        "achieved_rate_per_rank": result.achieved_rate_per_rank,
    }


def bench_chaos_hotpath(rows: int = 200_000, reps: int = 5,
                        check_rows: int = 4_096, seed: int = 0xC4A0) -> dict:
    """Guard for the fault-injection seam: with no :class:`FaultPlan`
    active, ``Mechanism.read_block`` must stay a thin wrapper over the
    raw source collect — the chaos hook is one function call returning
    None, never per-row work.

    ``speedup_vs_scalar`` here is ``wall(source.collect) /
    wall(read_block)``: the fraction of a retry-free block read spent
    below the seam.  It sits near 1x when the wrapper is thin and
    collapses toward 0x if the disabled chaos path ever grows per-row
    overhead — the floor catches exactly that regression.  Byte-identity
    of a zero-rate active plan against the disabled path is asserted on
    a reduced grid.
    """
    import numpy as np

    from repro import testbeds
    from repro.chaos.faults import FaultPlan, FaultRule

    node, gpu, _ = testbeds.gpu_node(seed=seed)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    backend = NvmlBackend(gpu)
    times = np.arange(rows, dtype=np.float64) * NVML_INTERVAL_S

    backend.read_block(times)  # warm both paths out of the timing
    wall_block = min(_wall(lambda: backend.read_block(times))[0]
                     for _ in range(reps))
    wall_collect = min(_wall(lambda: backend.source.collect(times))[0]
                       for _ in range(reps))

    check_times = times[:check_rows]
    disabled = backend.read_block(check_times)
    zero_plan = FaultPlan(seed=seed, rules=(FaultRule("nvml", rate=0.0),))
    with zero_plan.active():
        wall_zero, under_plan = _wall(lambda: backend.read_block(check_times))
    if under_plan.tobytes() != disabled.tobytes():
        raise AssertionError(
            "zero-rate fault plan changed read_block bytes")
    return {
        "wall_s": wall_block,
        "speedup_vs_scalar": wall_collect / wall_block,
        "collect_wall_s": wall_collect,
        "zero_rate_wall_s": wall_zero,
        "rows": rows,
        "byte_identical": True,
    }


def bench_service_smoke(racks: int = 8, shards: int = 8,
                        requests: int = 100, sweeps: int = 16) -> dict:
    """The monitoring service at CI-smoke scale: mixed queries through
    the in-process WSGI client against a populated sharded envdb.

    ``speedup_vs_scalar`` is the aggregate cache's cold-build vs
    warm-hit per-query ratio *measured through the whole HTTP stack*
    (dispatch, auth, planning, JSON) — the service-level face of the
    store-level cached-aggregate speedup.  The committed full-size
    figures live in ``BENCH_service.json`` (``python -m repro service
    bench``), not in the moneq trajectory file.
    """
    from repro.service.loadgen import bench_service

    return bench_service(racks=racks, shards=shards, requests=requests,
                         sweeps=sweeps)


#: Bench name -> zero-argument callable, in report order.
ALL_BENCHES: dict[str, Callable[[], dict]] = {
    "moneq_block": bench_moneq_block,
    "moneq_full_session": bench_moneq_full_session,
    "launcher_fanin_4096": bench_launcher_fanin,
    "launcher_mmps": bench_launcher_mmps,
    "chaos_hotpath": bench_chaos_hotpath,
}

#: Reduced-size profile for CI smoke runs: same benches, small enough
#: to finish in seconds on a shared runner.  Smoke results are never
#: written to the trajectory file — the committed numbers measure the
#: full profile.
SMOKE_BENCHES: dict[str, Callable[[], dict]] = {
    "moneq_block": lambda: bench_moneq_block(agents=64, ticks=1_000,
                                             scalar_ticks=50),
    "moneq_full_session": lambda: bench_moneq_full_session(duration_s=10.0),
    "launcher_fanin_4096": lambda: bench_launcher_fanin(size=512),
    "launcher_mmps": lambda: bench_launcher_mmps(messages_per_rank=400),
    "chaos_hotpath": lambda: bench_chaos_hotpath(rows=50_000, reps=3),
    "service": bench_service_smoke,
}

#: Absolute speedup floors a smoke check enforces.  Deliberately far
#: below locally-measured values: a shared CI runner is noisy, and the
#: check exists to catch an optimization being *undone* (speedups
#: collapsing to ~1x), not to benchmark the runner.
SMOKE_FLOORS: dict[str, float] = {
    "moneq_block": 3.0,
    "moneq_full_session": 2.0,
    "launcher_fanin_4096": 1.5,
    # chaos_hotpath's ratio is collect/read_block (<= ~1 by definition):
    # 0.25 means a retry-free read spends at least a quarter of its wall
    # below the fault-injection seam — per-row chaos overhead on the
    # disabled path would push it far under.
    "chaos_hotpath": 0.25,
    # service's ratio is the aggregate cache cold/warm through the HTTP
    # stack (~2.5x measured; the store-level ~85x is mostly absorbed by
    # dispatch + JSON).  1.5x still separates a live cache from a dead
    # one (ratio ~1x).
    "service": 1.5,
}

#: Relative slack allowed when re-measuring a committed speedup.  Wide
#: because these are single-shot wall-clock measurements on shared
#: machines; the check is for *regressions* (an optimization undone),
#: not run-to-run jitter.
CHECK_TOLERANCE = 0.30


def check(json_path: str = "BENCH_moneq.json",
          tolerance: float = CHECK_TOLERANCE,
          smoke: bool = False,
          ) -> tuple[list[str], dict[str, dict]]:
    """Re-run every bench and compare against the committed trajectory.

    Returns ``(failures, fresh_results)`` where each failure names a
    bench whose fresh ``speedup_vs_scalar`` fell more than ``tolerance``
    below the committed value (or that disappeared from the suite).
    The committed file is never rewritten by a check.

    With ``smoke=True`` the reduced :data:`SMOKE_BENCHES` profile runs
    instead and is held to the absolute :data:`SMOKE_FLOORS` — the
    committed trajectory measures the full profile, so comparing smoke
    numbers against it would be meaningless.
    """
    if smoke:
        results = run(json_path=None, benches=SMOKE_BENCHES)
        failures = [
            f"{name}: smoke speedup "
            f"{results[name]['speedup_vs_scalar']:.3f}x below the "
            f"{floor:.1f}x floor"
            for name, floor in SMOKE_FLOORS.items()
            if results[name]["speedup_vs_scalar"] < floor
        ]
        return failures, results
    with open(json_path, encoding="utf-8") as fh:
        committed = json.load(fh)
    results = run(json_path=None)
    failures: list[str] = []
    for name, entry in committed.items():
        fresh = results.get(name)
        if fresh is None:
            failures.append(f"{name}: in {json_path} but no longer benched")
            continue
        floor = entry["speedup_vs_scalar"] * (1.0 - tolerance)
        if fresh["speedup_vs_scalar"] < floor:
            failures.append(
                f"{name}: speedup {fresh['speedup_vs_scalar']:.3f}x fell "
                f"below {floor:.3f}x (committed "
                f"{entry['speedup_vs_scalar']:.3f}x - {tolerance:.0%})")
    return failures, results


def run(json_path: str | None = "BENCH_moneq.json",
        benches: dict[str, Callable[[], dict]] | None = None,
        ) -> dict[str, dict]:
    """Run every bench; write the trajectory file (bench name ->
    ``{wall_s, speedup_vs_scalar}``) unless ``json_path`` is None."""
    if benches is None:
        benches = ALL_BENCHES
    results = {name: fn() for name, fn in benches.items()}
    if json_path is not None:
        trajectory = {
            name: {
                "wall_s": round(r["wall_s"], 6),
                "speedup_vs_scalar": round(r["speedup_vs_scalar"], 3),
            }
            for name, r in results.items()
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results
