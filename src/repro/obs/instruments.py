"""The shared instrument set for the simulated collectors.

Every vendor mechanism reports through the same four families, labeled
by ``mechanism``, so dashboards and the self-profiler can compare EMON
against RAPL against NVML against the Phi paths without knowing any
module internals:

* ``repro_collector_queries_total{mechanism}`` — one per query issued;
* ``repro_collector_query_seconds_total{mechanism}`` — charged latency;
* ``repro_collector_query_latency_seconds{mechanism}`` — its histogram;
* ``repro_collector_errors_total{mechanism,kind}`` — observed failures.

Mechanism-specific families (RAPL wraparounds, env-DB ingest, SCIF
traffic, MonEQ lifecycle, launcher scheduling) live here too so the full
metric namespace is declared in one place — ``docs/observability.md``
documents it name by name.

Modules grab their handle once at import time via :func:`collector`;
the handle stays valid across :func:`repro.obs.registry.MetricsRegistry.
reset` calls because resets zero samples without discarding children.
"""

from __future__ import annotations

from repro.obs.metrics import LATENCY_BUCKETS_S
from repro.obs.registry import get_registry

_REGISTRY = get_registry()

#: Mechanism label values in use, grouped by the paper's four vendors.
VENDOR_MECHANISMS: dict[str, tuple[str, ...]] = {
    "bgq": ("emon", "envdb"),
    "rapl": ("rapl_msr", "rapl_perf", "rapl_powercap"),
    "nvml": ("nvml",),
    "xeonphi": ("sysmgmt", "micras", "ipmb", "micsmc", "scif"),
}

COLLECTOR_QUERIES = _REGISTRY.counter(
    "repro_collector_queries_total",
    "Queries issued against a collection mechanism",
    labels=("mechanism",),
)
COLLECTOR_QUERY_SECONDS = _REGISTRY.counter(
    "repro_collector_query_seconds_total",
    "Virtual seconds charged to collection queries",
    labels=("mechanism",),
)
COLLECTOR_LATENCY = _REGISTRY.histogram(
    "repro_collector_query_latency_seconds",
    "Per-query latency distribution",
    buckets=LATENCY_BUCKETS_S,
    labels=("mechanism",),
)
COLLECTOR_ERRORS = _REGISTRY.counter(
    "repro_collector_errors_total",
    "Collection failures, by mechanism and kind",
    labels=("mechanism", "kind"),
)

# -- RAPL ------------------------------------------------------------------

RAPL_WRAPAROUNDS = _REGISTRY.counter(
    "repro_rapl_wraparounds_total",
    "True 32-bit energy-counter wraps elapsed between decoded reads "
    "(exactly one increment per wrap, even when a single delta spans "
    "several wraps)",
    labels=("domain",),
)
RAPL_WRAP_CORRECTIONS = _REGISTRY.counter(
    "repro_rapl_wrap_corrections_total",
    "Single-wrap corrections applied by RAPL consumers (what software "
    "can observe; undercounts when sampling slower than the wrap period)",
    labels=("mechanism",),
)

# -- BG/Q environmental database -------------------------------------------

ENVDB_POLLS = _REGISTRY.counter(
    "repro_envdb_polls_total",
    "Environmental-database polling sweeps completed",
)
ENVDB_RECORDS = _REGISTRY.counter(
    "repro_envdb_records_total",
    "Rows ingested into the environmental database",
    labels=("table",),
)
ENVDB_QUERY_ROWS = _REGISTRY.counter(
    "repro_envdb_query_rows_total",
    "Rows returned by environmental-database range queries",
)

# -- Sharded store ----------------------------------------------------------

STORE_BATCHES = _REGISTRY.counter(
    "repro_store_batches_total",
    "Write batches flushed into the sharded store",
)
STORE_BATCH_RECORDS = _REGISTRY.histogram(
    "repro_store_batch_records",
    "Records per flushed write batch",
    buckets=(1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0),
)
STORE_RECORDS = _REGISTRY.counter(
    "repro_store_records_total",
    "Records accepted by the sharded store, by shard",
    labels=("shard",),
)
STORE_DROPPED = _REGISTRY.counter(
    "repro_store_dropped_records_total",
    "Records dropped because a shard's per-sweep ingest budget was "
    "exhausted, accounted to the saturated shard",
    labels=("shard",),
)
STORE_QUERIES = _REGISTRY.counter(
    "repro_store_queries_total",
    "Queries served by the sharded store, by kind",
    labels=("kind",),
)
STORE_QUERY_ROWS = _REGISTRY.counter(
    "repro_store_query_rows_total",
    "Rows (records or aggregate windows) returned by store queries",
)
STORE_CACHE_HITS = _REGISTRY.counter(
    "repro_store_cache_hits_total",
    "Aggregate-cache lookups served from cached windows",
)
STORE_CACHE_MISSES = _REGISTRY.counter(
    "repro_store_cache_misses_total",
    "Aggregate-cache lookups that rebuilt a shard's windows",
)
STORE_CACHE_INVALIDATIONS = _REGISTRY.counter(
    "repro_store_cache_invalidations_total",
    "Aggregate-cache entries invalidated by ingest",
)

# -- Channel cache -----------------------------------------------------------

CACHE_HITS = _REGISTRY.counter(
    "repro_cache_hits_total",
    "Channel-cache rows whose every field was served from a "
    "freshness-window hit, by mechanism",
    labels=("mechanism",),
)
CACHE_MISSES = _REGISTRY.counter(
    "repro_cache_misses_total",
    "Channel-cache rows that needed a device collection (at least one "
    "field missed its freshness window), by mechanism",
    labels=("mechanism",),
)
CACHE_CROSSINGS_SAVED = _REGISTRY.counter(
    "repro_cache_crossings_saved_total",
    "Access-channel exchanges skipped by channel-cache hits "
    "(hit rows x the mechanism's queries_per_read)",
    labels=("mechanism",),
)
CACHE_INVALIDATIONS = _REGISTRY.counter(
    "repro_cache_invalidations_total",
    "Channel-cache device entries invalidated (chaos dark periods, "
    "capacity eviction, explicit clears)",
    labels=("mechanism",),
)

# -- Federated fleet ---------------------------------------------------------

FLEET_SWEEPS = _REGISTRY.counter(
    "repro_fleet_sweeps_total",
    "Environmental polling sweeps completed across the fleet, by site",
    labels=("site",),
)
FLEET_RECORDS = _REGISTRY.counter(
    "repro_fleet_records_total",
    "Records accepted into per-site stores during fleet sweeps, by site",
    labels=("site",),
)
FLEET_RESHARDS = _REGISTRY.counter(
    "repro_fleet_reshards_total",
    "Shard-rebalancing operations applied to a saturated site's store",
    labels=("site",),
)
FLEET_QUERIES = _REGISTRY.counter(
    "repro_fleet_queries_total",
    "Queries served by the federated store, by kind",
    labels=("kind",),
)
FLEET_PARTIALS_MERGED = _REGISTRY.counter(
    "repro_fleet_partials_merged_total",
    "Site-local partial aggregates merged centrally into fleet windows",
)

# -- SCIF ------------------------------------------------------------------

SCIF_MESSAGES = _REGISTRY.counter(
    "repro_scif_messages_total",
    "SCIF messages delivered between host and card endpoints",
)
SCIF_BYTES = _REGISTRY.counter(
    "repro_scif_bytes_total",
    "SCIF payload bytes delivered",
)

# -- MonEQ session lifecycle ------------------------------------------------

MONEQ_SESSIONS_STARTED = _REGISTRY.counter(
    "repro_moneq_sessions_started_total",
    "MonEQ profiling sessions initialized",
)
MONEQ_SESSIONS_FINALIZED = _REGISTRY.counter(
    "repro_moneq_sessions_finalized_total",
    "MonEQ profiling sessions finalized",
)
MONEQ_TICKS = _REGISTRY.counter(
    "repro_moneq_ticks_total",
    "Collection timer ticks fired across all sessions",
)
MONEQ_RECORDS = _REGISTRY.counter(
    "repro_moneq_records_total",
    "Records appended to MonEQ agent buffers",
)
MONEQ_BUFFER_FILL = _REGISTRY.gauge(
    "repro_moneq_buffer_fill_ratio",
    "Fill ratio of the fullest agent buffer in the most recent tick",
)
MONEQ_BUFFER_FULL = _REGISTRY.counter(
    "repro_moneq_buffer_full_total",
    "Appends refused because an agent's preallocated buffer was full",
)

# -- SPMD launcher ----------------------------------------------------------

LAUNCHER_RUNS = _REGISTRY.counter(
    "repro_launcher_runs_total",
    "SPMD programs run to completion",
)
LAUNCHER_RANKS = _REGISTRY.counter(
    "repro_launcher_ranks_total",
    "Ranks scheduled across completed runs",
)
LAUNCHER_MESSAGES = _REGISTRY.counter(
    "repro_launcher_messages_total",
    "Point-to-point messages across completed runs, by direction",
    labels=("direction",),
)
LAUNCHER_ERRORS = _REGISTRY.counter(
    "repro_launcher_errors_total",
    "SPMD runs ended by a failure, by kind",
    labels=("kind",),
)


# -- Chaos / fault injection -------------------------------------------------

CHAOS_FAULTS = _REGISTRY.counter(
    "repro_chaos_faults_injected_total",
    "Channel-crossing faults injected by the active fault plan, by "
    "mechanism and fault kind",
    labels=("mechanism", "kind"),
)
CHAOS_DARK_READS = _REGISTRY.counter(
    "repro_chaos_dark_reads_total",
    "Crossings degraded to a sensor-dark (NaN) reading after retries "
    "were exhausted, the timeout budget expired, or the circuit "
    "breaker failed fast",
    labels=("mechanism",),
)
CHAOS_STALE_READS = _REGISTRY.counter(
    "repro_chaos_stale_reads_total",
    "Crossings served stale by a wedged daemon: the exchange delivered "
    "promptly, but with the last bytes the daemon produced before it "
    "wedged (paper §II: a wedged pseudo-file serves data stale "
    "beyond the freshness window)",
    labels=("mechanism",),
)
CHAOS_BREAKER_TRANSITIONS = _REGISTRY.counter(
    "repro_chaos_breaker_transitions_total",
    "Circuit-breaker state transitions, by mechanism and entered state "
    "(closed, open, half_open)",
    labels=("mechanism", "state"),
)

# -- Retry layer -------------------------------------------------------------

RETRY_ATTEMPTS = _REGISTRY.counter(
    "repro_retry_attempts_total",
    "Channel exchanges re-issued after an injected fault",
    labels=("mechanism",),
)
RETRY_BACKOFF_SECONDS = _REGISTRY.counter(
    "repro_retry_backoff_seconds_total",
    "Modeled seconds spent backing off between retry attempts",
    labels=("mechanism",),
)
RETRY_EXHAUSTED = _REGISTRY.counter(
    "repro_retry_exhausted_total",
    "Crossings whose retries ran out (or whose timeout budget expired) "
    "without a delivered reading",
    labels=("mechanism",),
)

# -- Query service -----------------------------------------------------------

SERVICE_REQUESTS = _REGISTRY.counter(
    "repro_service_requests_total",
    "HTTP requests served by the query service, by endpoint and status",
    labels=("endpoint", "status"),
)
SERVICE_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_service_request_seconds",
    "Per-request wall time, by endpoint",
    buckets=(1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0),
    labels=("endpoint",),
)
SERVICE_DENIALS = _REGISTRY.counter(
    "repro_service_denials_total",
    "Requests refused by the tenant permission gate, by tenant",
    labels=("tenant",),
)
SERVICE_STREAM_ROWS = _REGISTRY.counter(
    "repro_service_stream_rows_total",
    "Readings delivered over streaming tails",
)
SERVICE_STREAM_GAPS = _REGISTRY.counter(
    "repro_service_stream_gaps_total",
    "Gap markers emitted by streaming tails for dark shards",
)

# -- Experiment execution engine --------------------------------------------

EXEC_TASKS = _REGISTRY.counter(
    "repro_exec_tasks_total",
    "Experiment tasks finished by the execution engine, by status "
    "(ok, error, retry, crash, timeout)",
    labels=("status",),
)
EXEC_QUEUE_DEPTH = _REGISTRY.gauge(
    "repro_exec_queue_depth",
    "Experiment tasks still waiting for a worker",
)
EXEC_TASK_SECONDS = _REGISTRY.histogram(
    "repro_exec_task_seconds",
    "Per-task wall time, by experiment",
    buckets=(1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0),
    labels=("experiment",),
)
EXEC_CACHE = _REGISTRY.counter(
    "repro_exec_cache_total",
    "Result-cache events (hit, miss, store, evict_corrupt)",
    labels=("event",),
)
EXEC_WORKER_RESTARTS = _REGISTRY.counter(
    "repro_exec_worker_restarts_total",
    "Workers replaced after a crash or task timeout",
)

# -- Scenario packs ----------------------------------------------------------

PACK_RUNS = _REGISTRY.counter(
    "repro_pack_runs_total",
    "Scenario-pack runs dispatched through the pack runner, by pack "
    "and scenario kind",
    labels=("pack", "kind"),
)
PACK_RUN_SECONDS = _REGISTRY.histogram(
    "repro_pack_run_seconds",
    "Wall time of one pack run end to end (compile, engine, assemble)",
    buckets=(1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0),
    labels=("pack",),
)
PACK_VALIDATION_ERRORS = _REGISTRY.counter(
    "repro_pack_validation_errors_total",
    "Manifest validation failures (unknown key, bad type, unknown "
    "mechanism/experiment), each naming the offending field",
)


class CollectorInstrument:
    """Pre-bound handles for one mechanism's hot path.

    ``record_query`` is the common case — one query, known charged
    latency — and costs two counter adds plus one histogram observe.
    ``count_query`` is for mechanisms with no latency model (the env-DB
    range query) where a zero-second observation would only distort the
    latency histogram.
    """

    __slots__ = ("mechanism", "_queries", "_seconds", "_latency")

    def __init__(self, mechanism: str):
        self.mechanism = mechanism
        self._queries = COLLECTOR_QUERIES.labels(mechanism)
        self._seconds = COLLECTOR_QUERY_SECONDS.labels(mechanism)
        self._latency = COLLECTOR_LATENCY.labels(mechanism)

    def record_query(self, seconds: float, count: int = 1) -> None:
        """Record ``count`` queries of ``seconds`` charged latency *each*
        — the block-sampling engine batches a whole slab of identical
        ticks into one call."""
        self._queries.inc(count)
        self._seconds.inc(seconds * count)
        self._latency.observe(seconds, count)

    def count_query(self, count: int = 1) -> None:
        self._queries.inc(count)

    def record_error(self, kind: str) -> None:
        COLLECTOR_ERRORS.labels(self.mechanism, kind).inc()

    @property
    def queries(self) -> float:
        return self._queries.value

    def errors(self, kind: str) -> float:
        return COLLECTOR_ERRORS.value(self.mechanism, kind)


_INSTRUMENTS: dict[str, CollectorInstrument] = {}


def collector(mechanism: str) -> CollectorInstrument:
    """The (cached) instrument handle for one mechanism label."""
    instrument = _INSTRUMENTS.get(mechanism)
    if instrument is None:
        instrument = CollectorInstrument(mechanism)
        _INSTRUMENTS[mechanism] = instrument
    return instrument
