"""Metric registry: declaration, collection, reset and merge.

A :class:`MetricsRegistry` owns a set of metric families.  Declaration
is get-or-create — instrumented modules can all say
``registry.counter("repro_collector_queries_total", ...)`` and share one
family — but redeclaring a name with a different kind, label schema or
bucket layout is a programming error and raises.

One process-global registry backs the instrumented collectors; tests
that need isolation either build private registries or call
:func:`reset` (which zeroes samples while keeping every cached metric
handle valid — module-level instruments survive resets).
"""

from __future__ import annotations

import math

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    render_prometheus,
)


class MetricsRegistry:
    """A named collection of metric families.

    Parameters
    ----------
    enabled:
        When False every sample update becomes a no-op after one flag
        check; declarations and reads still work.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._families: dict[str, MetricFamily] = {}

    # -- declaration -------------------------------------------------------

    def counter(self, name: str, help: str,
                labels: tuple[str, ...] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str,
              labels: tuple[str, ...] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(self, name: str, help: str,
                  buckets: tuple[float, ...] | None = None,
                  labels: tuple[str, ...] = ()) -> Histogram:
        existing = self._families.get(name)
        if existing is not None:
            self._check_compatible(existing, Histogram, labels)
            if buckets is not None:
                wanted = tuple(float(b) for b in buckets)
                if wanted[-1] != math.inf:
                    wanted = wanted + (math.inf,)
                if wanted != existing.uppers:
                    raise ObservabilityError(
                        f"{name}: redeclared with different buckets"
                    )
            return existing
        if buckets is None:
            family = Histogram(name, help, label_names=tuple(labels),
                               registry=self)
        else:
            family = Histogram(name, help, buckets=tuple(buckets),
                               label_names=tuple(labels), registry=self)
        self._families[name] = family
        return family

    def _declare(self, cls, name: str, help: str, labels) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            self._check_compatible(existing, cls, labels)
            return existing
        family = cls(name, help, label_names=tuple(labels), registry=self)
        self._families[name] = family
        return family

    @staticmethod
    def _check_compatible(existing: MetricFamily, cls, labels) -> None:
        if type(existing) is not cls:
            raise ObservabilityError(
                f"{existing.name}: redeclared as {cls.kind}, "
                f"was {existing.kind}"
            )
        if existing.label_names != tuple(labels):
            raise ObservabilityError(
                f"{existing.name}: redeclared with labels {tuple(labels)}, "
                f"was {existing.label_names}"
            )

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            raise ObservabilityError(f"no metric family {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> list[MetricFamily]:
        return list(self._families.values())

    def names(self) -> list[str]:
        return list(self._families)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every sample in place.  Cached family/child handles held
        by instrumented modules remain live and start from zero."""
        for family in self._families.values():
            family.reset()

    # -- collection --------------------------------------------------------

    def collect(self) -> dict[str, dict[tuple[str, ...], object]]:
        """Plain-data snapshot: family name -> label tuple -> value
        (floats for counters/gauges, dicts for histograms)."""
        return {name: family.samples()
                for name, family in self._families.items()}

    def render(self) -> str:
        """The Prometheus text exposition of every family."""
        return render_prometheus(self._families.values())

    # -- merge -------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's samples into this one.

        Families are matched by name (created here when missing) and
        must agree on kind, labels and buckets.  Counter and histogram
        samples add; gauges take the other registry's value (last write
        wins, matching what a scrape of the merged process would see).
        """
        for name, family in other._families.items():
            if isinstance(family, Histogram):
                mine = self.histogram(name, family.help,
                                      buckets=family.uppers,
                                      labels=family.label_names)
            elif isinstance(family, Counter):
                mine = self.counter(name, family.help, family.label_names)
            elif isinstance(family, Gauge):
                mine = self.gauge(name, family.help, family.label_names)
            else:  # pragma: no cover - no other kinds exist
                raise ObservabilityError(f"unknown family kind {family.kind}")
            for key, child in family._children.items():
                target = mine.labels(*key)
                if isinstance(family, Histogram):
                    for i, c in enumerate(child.counts):
                        target.counts[i] += c
                    target.sum += child.sum
                    target.count += child.count
                elif isinstance(family, Counter):
                    target.value += child.value
                else:
                    target.value = child.value

    @classmethod
    def merged(cls, *registries: "MetricsRegistry") -> "MetricsRegistry":
        """A fresh registry holding the sum of the given registries."""
        out = cls()
        for registry in registries:
            out.merge_from(registry)
        return out


#: The process-global registry every instrumented collector reports to.
#: Never replaced — only reset — so module-level instrument handles stay
#: valid for the life of the process.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry."""
    return _GLOBAL_REGISTRY
