"""``repro.obs`` — self-instrumentation for the reproduction.

The paper quantifies the cost of vendor collection mechanisms; this
package applies the same discipline to our own code.  It is
zero-dependency (standard library only) and splits into:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  with labels, and the Prometheus text exporter;
* :mod:`repro.obs.registry` — the process-global
  :class:`~repro.obs.registry.MetricsRegistry` with reset semantics;
* :mod:`repro.obs.tracing` — span tracing driven by the simulation
  clock, so traces are deterministic;
* :mod:`repro.obs.instruments` — the shared families every collector
  reports through, plus per-mechanism handles;
* :mod:`repro.obs.selfprofile` — Table III-style per-collector overhead
  reports over any window of simulated work.

``python -m repro obs dump`` exercises every mechanism and prints the
exposition; see ``docs/observability.md`` for the metric reference.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.selfprofile import (
    CollectorOverhead,
    SelfProfileReport,
    SelfProfiler,
)
from repro.obs.tracing import SpanRecord, Tracer, get_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "CollectorOverhead",
    "SelfProfileReport",
    "SelfProfiler",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "reset",
    "dump",
    "set_enabled",
]


def reset() -> None:
    """Zero the global registry and tracer (test isolation helper).
    Instrument handles cached at module import stay valid."""
    get_registry().reset()
    get_tracer().reset()


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable metric updates (tracing is unaffected)."""
    get_registry().enabled = bool(enabled)


def dump() -> str:
    """The Prometheus text exposition of the global registry."""
    return get_registry().render()
