"""Metric primitives: counters, gauges and fixed-bucket histograms.

The paper measures the measurers — EMON, RAPL, NVML and the Xeon Phi
paths — so the reproduction needs the same treatment applied to itself.
These primitives are deliberately tiny and dependency-free: a metric is
a named family with a fixed label schema, each distinct label-value
tuple owns one sample, and :func:`render_prometheus` emits the standard
text exposition format so dumps diff cleanly across runs.

Semantics follow the Prometheus data model:

* counters only ever increase (a negative increment raises);
* gauges move freely;
* histograms have fixed upper bounds chosen at declaration time and
  export *cumulative* bucket counts plus ``_sum`` and ``_count``.

Families may be disabled wholesale through their owning registry, which
reduces every hot-path update to a single flag check — the property the
``bench_obs_overhead`` benchmark pins below 5 %.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Ceiling on distinct label-value tuples per family.  Unbounded label
#: cardinality is the classic way an instrumented system observes itself
#: to death; hitting the ceiling is a programming error, not load.
DEFAULT_MAX_LABEL_SETS = 1024

#: Default latency buckets (seconds), spanning the paper's per-query
#: costs: 0.03 ms MSR reads up to the 22 ms IPMB exchange and beyond.
LATENCY_BUCKETS_S = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: tuple[str, ...]) -> tuple[str, ...]:
    for label in label_names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(label_names)) != len(label_names):
        raise ObservabilityError(f"duplicate label names in {label_names}")
    return tuple(label_names)


def format_value(value: float) -> str:
    """Render a sample value the way the Prometheus text format does."""
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class MetricFamily:
    """Common machinery: label schema, child cache, enable gating."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = (),
                 registry=None, max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        self.name = _check_name(name)
        self.help = str(help)
        self.label_names = _check_labels(tuple(label_names))
        self.max_label_sets = int(max_label_sets)
        self._registry = registry
        self._children: dict[tuple[str, ...], object] = {}
        self._default = None
        if not self.label_names:
            self._default = self._new_child()
            self._children[()] = self._default

    @property
    def enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    # -- children ----------------------------------------------------------

    def labels(self, *values, **by_name):
        """The sample for one label-value tuple (created on first use)."""
        key = self._label_key(values, by_name)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_label_sets:
                raise ObservabilityError(
                    f"{self.name}: label cardinality exceeds "
                    f"{self.max_label_sets} distinct label sets"
                )
            child = self._new_child()
            self._children[key] = child
        return child

    def _label_key(self, values: tuple, by_name: dict) -> tuple[str, ...]:
        if values and by_name:
            raise ObservabilityError(
                f"{self.name}: pass labels positionally or by name, not both"
            )
        if by_name:
            if set(by_name) != set(self.label_names):
                raise ObservabilityError(
                    f"{self.name}: expected labels {self.label_names}, "
                    f"got {tuple(sorted(by_name))}"
                )
            values = tuple(by_name[name] for name in self.label_names)
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"values {self.label_names}, got {len(values)}"
            )
        return tuple(str(v) for v in values)

    def _require_unlabeled(self):
        if self._default is None:
            raise ObservabilityError(
                f"{self.name} is labeled by {self.label_names}; "
                "call .labels(...) first"
            )
        return self._default

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- collection --------------------------------------------------------

    def samples(self) -> dict[tuple[str, ...], object]:
        """Snapshot of label tuple -> plain-value sample state."""
        return {key: child.snapshot() for key, child in self._children.items()}

    def reset(self) -> None:
        """Zero every sample, keeping children (cached handles stay valid)."""
        for child in self._children.values():
            child.clear()

    def _render_labels(self, key: tuple[str, ...],
                       extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = list(zip(self.label_names, key)) + list(extra)
        if not pairs:
            return ""
        inner = ",".join(
            f'{name}="{escape_label_value(value)}"' for name, value in pairs
        )
        return "{" + inner + "}"


class _CounterChild:
    __slots__ = ("_family", "value")

    def __init__(self, family: "Counter"):
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ObservabilityError(
                f"{self._family.name}: counters can only increase "
                f"(inc by {amount})"
            )
        if self._family.enabled:
            self.value += amount

    def snapshot(self) -> float:
        return self.value

    def clear(self) -> None:
        self.value = 0.0


class Counter(MetricFamily):
    """Monotonically non-decreasing count (events, queries, errors)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled().inc(amount)

    def value(self, *label_values) -> float:
        """Current count for one label tuple (0 if never incremented)."""
        if not label_values and self._default is not None:
            return self._default.value
        child = self._children.get(self._label_key(label_values, {}))
        return 0.0 if child is None else child.value


class _GaugeChild:
    __slots__ = ("_family", "value")

    def __init__(self, family: "Gauge"):
        self._family = family
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._family.enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._family.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._family.enabled:
            self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def clear(self) -> None:
        self.value = 0.0


class Gauge(MetricFamily):
    """A value that can move both ways (buffer fill, active sessions)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self)

    def set(self, value: float) -> None:
        self._require_unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabeled().dec(amount)

    def value(self, *label_values) -> float:
        if not label_values and self._default is not None:
            return self._default.value
        child = self._children.get(self._label_key(label_values, {}))
        return 0.0 if child is None else child.value


class _HistogramChild:
    __slots__ = ("_family", "counts", "sum", "count")

    def __init__(self, family: "Histogram"):
        self._family = family
        self.counts = [0] * len(family.uppers)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (a batch of
        identical samples costs one bucket update, not ``count``)."""
        if not self._family.enabled:
            return
        self.counts[bisect_left(self._family.uppers, value)] += count
        self.sum += value * count
        self.count += count

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts, ending in the total count."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def snapshot(self) -> dict:
        return {
            "counts": self.cumulative_counts(),
            "sum": self.sum,
            "count": self.count,
        }

    def clear(self) -> None:
        self.counts = [0] * len(self.counts)
        self.sum = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """Fixed-bucket distribution (per-query latency, span durations)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
                 label_names: tuple[str, ...] = (), registry=None,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ObservabilityError(f"{name}: histogram needs >= 1 bucket")
        if any(b1 >= b2 for b1, b2 in zip(uppers, uppers[1:])):
            raise ObservabilityError(
                f"{name}: bucket bounds must strictly increase, got {uppers}"
            )
        if "le" in label_names:
            raise ObservabilityError(f"{name}: 'le' is reserved for buckets")
        if uppers[-1] != math.inf:
            uppers = uppers + (math.inf,)
        self.uppers = uppers
        super().__init__(name, help, label_names, registry, max_label_sets)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self)

    def observe(self, value: float, count: int = 1) -> None:
        self._require_unlabeled().observe(value, count)

    def child(self, *label_values) -> _HistogramChild | None:
        if not label_values and self._default is not None:
            return self._default
        return self._children.get(self._label_key(label_values, {}))


def render_family(family: MetricFamily) -> list[str]:
    """Text-exposition lines for one family (HELP, TYPE, samples)."""
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for key in sorted(family._children):
        child = family._children[key]
        if isinstance(family, Histogram):
            for upper, cum in zip(family.uppers, child.cumulative_counts()):
                labels = family._render_labels(key, (("le", format_value(upper)),))
                lines.append(f"{family.name}_bucket{labels} {cum}")
            base = family._render_labels(key)
            lines.append(f"{family.name}_sum{base} {format_value(child.sum)}")
            lines.append(f"{family.name}_count{base} {child.count}")
        else:
            labels = family._render_labels(key)
            lines.append(f"{family.name}{labels} {format_value(child.value)}")
    return lines


def render_prometheus(families) -> str:
    """Prometheus text exposition (format 0.0.4) for an iterable of
    families, in declaration order."""
    lines: list[str] = []
    for family in families:
        lines.extend(render_family(family))
    return "\n".join(lines) + "\n" if lines else ""
