"""Exercise every vendor mechanism so ``repro obs dump`` has data.

``repro obs dump`` with no target (or the explicit target ``demo``)
runs :func:`exercise_all`: the Figure 1 pipeline (BG/Q environmental
database), an EMON collection burst, userspace MSR reads on a RAPL
workstation, NVML queries against a Kepler GPU, and all three Xeon Phi
paths (SysMgmt, MICRAS, IPMB).  Afterwards the global registry holds a
non-zero ``repro_collector_queries_total`` sample for at least one
mechanism of each of the paper's four vendor platforms.

Each exercise is also usable on its own (the smoke tests do that) and
returns a small summary dict so callers can sanity-check what ran.
"""

from __future__ import annotations

from repro.host.permissions import USER
from repro.rapl.driver import read_msr_userspace
from repro.rapl.msr import MSR_PKG_ENERGY_STATUS


def exercise_fig1(seed: int = 0xF161) -> dict[str, float]:
    """The paper's Figure 1 pipeline: BG/Q envdb polling + query."""
    from repro.experiments import fig1

    result = fig1.run(seed=seed)
    return {"samples": result.samples, "idle_w": result.idle.idle_level}


def exercise_emon(seed: int = 0xE307, queries: int = 8) -> dict[str, float]:
    """A burst of active EMON collections on one node board."""
    from repro.bgq.machine import BgqMachine
    from repro.sim.rng import RngRegistry

    machine = BgqMachine(racks=1, rng=RngRegistry(seed))
    emon = machine.emon(machine.node_boards()[0].location)
    total_w = 0.0
    for _ in range(queries):
        total_w += sum(r.power_w for r in emon.collect())
    return {"queries": queries, "mean_node_card_w": total_w / queries}


def exercise_rapl(seed: int = 0x4A91, reads: int = 16) -> dict[str, float]:
    """Userspace MSR reads on the paper's RAPL workstation deployment."""
    from repro.testbeds import rapl_node

    node, _ = rapl_node(seed=seed)
    last = 0
    for _ in range(reads):
        node.clock.advance(0.060)
        last = read_msr_userspace(node, 0, MSR_PKG_ENERGY_STATUS, USER)
    return {"reads": reads, "last_raw": float(last)}


def exercise_nvml(seed: int = 0x6B02, queries: int = 8) -> dict[str, float]:
    """NVML power/temperature queries against a Kepler K20."""
    from repro.testbeds import gpu_node

    node, _, nvml = gpu_node(seed=seed)
    handle = nvml.device_get_handle_by_index(0)
    power_mw = 0
    for _ in range(queries):
        node.clock.advance(0.060)
        power_mw = nvml.device_get_power_usage(handle)
        nvml.device_get_temperature(handle)
    nvml.shutdown()
    return {"queries": 2 * queries, "last_power_w": power_mw / 1000.0}


def exercise_moneq(seed: int = 0x3E5, window_s: float = 2.0) -> dict[str, float]:
    """A short MonEQ session on the RAPL workstation: exercises the
    session tick path and the initialize/finalize trace spans."""
    from repro.core import moneq
    from repro.testbeds import rapl_node

    node, _ = rapl_node(seed=seed)
    session = moneq.initialize(node)
    node.events.run_until(node.clock.now + window_s)
    result = session.finalize()
    return {"ticks": result.overhead.ticks,
            "overhead_pct": result.overhead.percent_of_runtime}


def exercise_phi(seed: int = 0x9A1, reads: int = 4) -> dict[str, float]:
    """All three Xeon Phi paths: SysMgmt (SCIF), MICRAS, and IPMB."""
    from repro.testbeds import phi_node

    rig = phi_node(seed=seed)
    card_w = 0.0
    for _ in range(reads):
        rig.node.clock.advance(0.100)
        card_w = rig.sysmgmt.query_power_w()
        rig.micras.read_power_w()
        rig.bmc.read_power_w()
    rig.sysmgmt.close()
    return {"reads": 3 * reads, "last_card_w": card_w}


def exercise_store(seed: int = 0x5708E, racks: int = 1,
                   shards: int = 2) -> dict[str, float]:
    """Sharded-store ingest + every query kind on a small BG/Q rig."""
    from repro.bgq.machine import BgqMachine
    from repro.sim.rng import RngRegistry

    machine = BgqMachine(racks=racks, rng=RngRegistry(seed),
                         poll_interval_s=240.0, envdb_shards=shards)
    machine.advance_to(240.0 * 4)
    store = machine.envdb.store
    rows = store.range("bpm", 0.0, 960.0)
    store.latest("bpm")
    aggs = machine.envdb.aggregate("bpm", "input_power_w", 0.0, 960.0, 480.0)
    machine.envdb.aggregate("bpm", "input_power_w", 0.0, 960.0, 480.0)
    return {"records": store.records_ingested, "rows": len(rows),
            "aggregates": float(len(aggs)),
            "dropped": store.dropped_records}


#: Target name -> exercise, in dump order.
EXERCISES = {
    "fig1": exercise_fig1,
    "store": exercise_store,
    "emon": exercise_emon,
    "rapl": exercise_rapl,
    "nvml": exercise_nvml,
    "phi": exercise_phi,
    "moneq": exercise_moneq,
}


def exercise_all() -> dict[str, dict[str, float]]:
    """Run every exercise; returns per-exercise summaries."""
    return {name: fn() for name, fn in EXERCISES.items()}
