"""Lightweight span tracing driven by the simulation clock.

A span is a named interval of *virtual* time with optional attributes
and a nesting depth.  Spans are opened with a context manager or the
``@tracer.trace(...)`` decorator; timing comes from whatever clock the
tracer (or the individual span) is bound to — usually a
:class:`repro.sim.clock.VirtualClock` — so traces are exactly as
deterministic as the simulation itself.  A tracer bound to no clock
still records structure (names, nesting, order) with zero-duration
spans, which keeps tracing safe to leave on in code paths that have no
clock in reach.

The finished-span buffer is bounded: once ``max_spans`` is reached new
spans are counted but dropped, so a runaway loop cannot observe itself
into an out-of-memory.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.errors import ObservabilityError


class _NullClock:
    """Clock of last resort: time stands still, determinism is free."""

    now = 0.0


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    t_start: float
    t_end: float
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


class _ActiveSpan:
    """Context manager for one open span."""

    __slots__ = ("tracer", "name", "clock", "attrs", "t_start", "parent",
                 "depth", "_closed")

    def __init__(self, tracer: "Tracer", name: str, clock, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.clock = clock
        self.attrs = attrs
        self.t_start = 0.0
        self.parent: str | None = None
        self.depth = 0
        self._closed = False

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute to the span while it is open."""
        self.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self.t_start = float(self.clock.now)
        stack = self.tracer._stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:  # pragma: no cover - double exit is a bug upstream
            return
        self._closed = True
        stack = self.tracer._stack
        if not stack or stack[-1] is not self:
            raise ObservabilityError(
                f"span {self.name!r} closed out of order"
            )
        stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._finish(SpanRecord(
            name=self.name,
            t_start=self.t_start,
            t_end=float(self.clock.now),
            depth=self.depth,
            parent=self.parent,
            attrs=self.attrs,
        ))


class Tracer:
    """Collects spans for one process (or one test).

    Parameters
    ----------
    clock:
        Default timing source; any object with a ``now`` attribute.
    max_spans:
        Finished-span buffer bound; excess spans are counted in
        ``spans_dropped`` and discarded.
    """

    def __init__(self, clock=None, max_spans: int = 10_000):
        if max_spans <= 0:
            raise ObservabilityError(
                f"max_spans must be positive, got {max_spans}"
            )
        self._clock = clock if clock is not None else _NullClock()
        self.max_spans = int(max_spans)
        self._stack: list[_ActiveSpan] = []
        self._finished: list[SpanRecord] = []
        self.spans_started = 0
        self.spans_dropped = 0

    # -- clock binding ----------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Use ``clock`` (anything with ``.now``) for subsequent spans."""
        self._clock = clock if clock is not None else _NullClock()

    # -- span creation ----------------------------------------------------

    def span(self, name: str, clock=None, **attrs) -> _ActiveSpan:
        """Open a span as a context manager.

        ``clock`` overrides the tracer's bound clock for this span only —
        handy where the right clock is a local (a node's, a queue's).
        """
        self.spans_started += 1
        return _ActiveSpan(self, str(name),
                           clock if clock is not None else self._clock,
                           dict(attrs))

    def trace(self, name: str | None = None, **attrs):
        """Decorator form: the wrapped call runs inside a span."""

        def decorate(fn):
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- results ----------------------------------------------------------

    def _finish(self, record: SpanRecord) -> None:
        if len(self._finished) >= self.max_spans:
            self.spans_dropped += 1
            return
        self._finished.append(record)

    @property
    def depth(self) -> int:
        """Nesting depth of the currently open span stack."""
        return len(self._stack)

    def finished(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans in completion order, optionally by name."""
        if name is None:
            return list(self._finished)
        return [s for s in self._finished if s.name == name]

    def total_time_s(self, name: str) -> float:
        """Summed duration of every finished span with ``name``."""
        return sum(s.duration_s for s in self._finished if s.name == name)

    def reset(self) -> None:
        """Drop finished spans and counters.  Open spans survive (they
        belong to code still running) but will land in the fresh buffer."""
        self._finished.clear()
        self.spans_started = len(self._stack)
        self.spans_dropped = 0

    def render(self) -> str:
        """Human-oriented indented listing of finished spans."""
        lines = []
        for span in self._finished:
            indent = "  " * span.depth
            attrs = ""
            if span.attrs:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                attrs = f" [{inner}]"
            lines.append(
                f"{indent}{span.name}: {span.t_start:.6f}s "
                f"+{span.duration_s:.6f}s{attrs}"
            )
        return "\n".join(lines)


#: Process-global tracer, matching the global metrics registry.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER
