"""Per-collector overhead accounting for our own instrumented code.

Table III of the paper decomposes MonEQ's cost into initialize /
collection / finalize and expresses the total as a percentage of
application runtime.  :class:`SelfProfiler` applies the same methodology
to this reproduction's collectors: wrap any window of simulated work in
the context manager and it reports, per mechanism, how many queries ran,
how much virtual time they consumed, and what fraction of the window
that represents — the before/after evidence future performance PRs cite.

The numbers come straight from the shared instrument families
(``repro_collector_queries_total`` / ``..._query_seconds_total``), so
anything instrumented through :mod:`repro.obs.instruments` is covered
with no extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry, get_registry

_QUERIES = "repro_collector_queries_total"
_SECONDS = "repro_collector_query_seconds_total"


@dataclass(frozen=True)
class CollectorOverhead:
    """One mechanism's share of a profiled window."""

    mechanism: str
    queries: int
    collection_s: float

    @property
    def mean_query_s(self) -> float:
        return self.collection_s / self.queries if self.queries else 0.0

    def percent_of(self, window_s: float) -> float:
        if window_s <= 0.0:
            return 0.0
        return 100.0 * self.collection_s / window_s


@dataclass(frozen=True)
class SelfProfileReport:
    """Table III, applied to our own collectors, for one window."""

    window_s: float
    collectors: tuple[CollectorOverhead, ...]

    @property
    def total_collection_s(self) -> float:
        return sum(c.collection_s for c in self.collectors)

    @property
    def total_queries(self) -> int:
        return sum(c.queries for c in self.collectors)

    @property
    def percent_of_window(self) -> float:
        if self.window_s <= 0.0:
            return 0.0
        return 100.0 * self.total_collection_s / self.window_s

    def mechanism(self, name: str) -> CollectorOverhead:
        for overhead in self.collectors:
            if overhead.mechanism == name:
                return overhead
        raise ObservabilityError(
            f"no mechanism {name!r} in this window; have "
            f"{[c.mechanism for c in self.collectors]}"
        )

    def as_table_rows(self) -> list[dict[str, object]]:
        """Rows shaped like Table III, one per mechanism plus a total."""
        rows: list[dict[str, object]] = [
            {
                "Mechanism": c.mechanism,
                "Queries": c.queries,
                "Time for Collection": c.collection_s,
                "Percent of Window": c.percent_of(self.window_s),
            }
            for c in self.collectors
        ]
        rows.append({
            "Mechanism": "total",
            "Queries": self.total_queries,
            "Time for Collection": self.total_collection_s,
            "Percent of Window": self.percent_of_window,
        })
        return rows

    def render(self) -> str:
        lines = [f"self-profile over {self.window_s:.3f} s of virtual time"]
        for row in self.as_table_rows():
            lines.append(
                f"  {row['Mechanism']:<14} {row['Queries']:>8} queries  "
                f"{row['Time for Collection']:>10.6f} s  "
                f"{row['Percent of Window']:>6.2f} %"
            )
        return "\n".join(lines)


class SelfProfiler:
    """Context manager measuring collector overhead over a clock window.

    Parameters
    ----------
    clock:
        Anything with a ``now`` attribute; the window is
        ``clock.now`` at exit minus at entry, in virtual seconds.
    registry:
        Where the collector counters live; the global registry by
        default.
    """

    def __init__(self, clock, registry: MetricsRegistry | None = None):
        self.clock = clock
        self.registry = registry if registry is not None else get_registry()
        self.report: SelfProfileReport | None = None
        self._t0 = 0.0
        self._queries0: dict[tuple[str, ...], float] = {}
        self._seconds0: dict[tuple[str, ...], float] = {}

    def _samples(self, family_name: str) -> dict[tuple[str, ...], float]:
        if family_name not in self.registry:
            return {}
        return dict(self.registry.get(family_name).samples())

    def __enter__(self) -> "SelfProfiler":
        self._t0 = float(self.clock.now)
        self._queries0 = self._samples(_QUERIES)
        self._seconds0 = self._samples(_SECONDS)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        window = float(self.clock.now) - self._t0
        queries1 = self._samples(_QUERIES)
        seconds1 = self._samples(_SECONDS)
        collectors = []
        for key in sorted(set(queries1) | set(seconds1)):
            dq = queries1.get(key, 0.0) - self._queries0.get(key, 0.0)
            ds = seconds1.get(key, 0.0) - self._seconds0.get(key, 0.0)
            if dq <= 0.0 and ds <= 0.0:
                continue
            collectors.append(CollectorOverhead(
                mechanism=key[0], queries=int(round(dq)), collection_s=ds,
            ))
        self.report = SelfProfileReport(
            window_s=window, collectors=tuple(collectors),
        )
