"""Fixed-runtime toy application and the idle workload.

Table III profiles "a toy application designed to run for exactly the
same amount of time regardless of the number of processors" — the
application whose overhead accounting yields the 0.4 % MonEQ figure.  The
paper reports runtimes of 202.78 / 202.73 / 202.74 s at 32 / 512 / 1024
nodes: constant by construction, with only measurement-level wiggle.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Component, Phase, PhasedWorkload, Workload

#: The paper's toy-application runtime (32-node row of Table III).
TABLE3_RUNTIME_S = 202.78


class FixedRuntimeToyWorkload(PhasedWorkload):
    """Constant moderate load for an exact duration, scale-invariant."""

    def __init__(self, duration: float = TABLE3_RUNTIME_S):
        phases = [
            Phase("busy", duration, {
                Component.BGQ_CHIP_CORE: 0.6,
                Component.BGQ_DRAM: 0.4,
                Component.BGQ_SRAM: 0.3,
                Component.CPU_CORES: 0.6,
                Component.CPU_DRAM: 0.4,
            }),
        ]
        super().__init__(name="toy-fixed-runtime", phases=phases,
                         metadata={"duration": duration})


class IdleWorkload(Workload):
    """No load anywhere: devices report their idle floors.

    Used to measure baselines (e.g. the RAPL idle shelf visible before
    and after the Figure 3 capture window) and as the 'off' arm of
    comparisons.
    """

    def __init__(self, duration: float = 60.0):
        if duration <= 0.0:
            raise WorkloadError(f"duration must be positive, got {duration}")
        super().__init__(name="idle", duration=duration, signals={})
