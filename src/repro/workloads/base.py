"""Workload base classes and the canonical component taxonomy.

Components are string keys identifying the hardware sub-units a workload
can stress.  Device power models look up the components they own:
a BG/Q compute card reads the ``bgq.*`` components, an NVIDIA GPU the
``gpu.*`` ones, and so on.  Unknown components are simply idle for a
given device, which is what lets one workload (e.g. offloaded Gaussian
elimination) drive a host CPU and a coprocessor simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.sim.signals import PiecewiseConstantSignal, Signal, SumSignal


class Component:
    """Canonical component names (string constants, namespaced by device)."""

    # Host CPU (RAPL domains map onto these).
    CPU_CORES = "cpu.cores"
    CPU_UNCORE = "cpu.uncore"
    CPU_DRAM = "cpu.dram"
    # NVIDIA GPU board.
    GPU_SM = "gpu.sm"
    GPU_MEM = "gpu.mem"
    GPU_PCIE = "gpu.pcie"
    # Xeon Phi card.
    PHI_CORES = "phi.cores"
    PHI_GDDR = "phi.gddr"
    PHI_PCIE = "phi.pcie"
    # Blue Gene/Q node-card domains (the 7 MonEQ domains).
    BGQ_CHIP_CORE = "bgq.chip_core"
    BGQ_DRAM = "bgq.dram"
    BGQ_LINK_CHIP = "bgq.link_chip"
    BGQ_HSS = "bgq.hss"
    BGQ_OPTICS = "bgq.optics"
    BGQ_PCIE = "bgq.pcie"
    BGQ_SRAM = "bgq.sram"
    # Interconnect (used by the MMPS model and the SPMD runtime).
    NETWORK = "net"

    @classmethod
    def all(cls) -> list[str]:
        return [v for k, v in vars(cls).items()
                if isinstance(v, str) and not k.startswith("_")]


class Workload:
    """Base workload: named utilization signals over a fixed duration.

    Parameters
    ----------
    name:
        Human-readable label, appears in MonEQ output headers.
    duration:
        Active run time in seconds.  Outside [0, duration] all
        utilizations are zero (the device is idle).
    signals:
        Mapping from component name to a utilization :class:`Signal`;
        values are clipped into [0, 1] on evaluation.
    metadata:
        Free-form parameters recorded for provenance (matrix size, ranks).
    """

    def __init__(
        self,
        name: str,
        duration: float,
        signals: Mapping[str, Signal],
        metadata: Mapping[str, object] | None = None,
    ):
        if duration <= 0.0:
            raise WorkloadError(f"workload duration must be positive, got {duration}")
        known = set(Component.all())
        for component in signals:
            if component not in known:
                raise WorkloadError(f"unknown component {component!r}")
        self.name = name
        self.duration = float(duration)
        self.signals = dict(signals)
        self.metadata = dict(metadata or {})

    @property
    def components(self) -> list[str]:
        return sorted(self.signals)

    def utilization(self, component: str, t: np.ndarray | float) -> np.ndarray:
        """Utilization of ``component`` at time(s) ``t``, in [0, 1].

        Zero outside the workload's active window and for components the
        workload does not stress.
        """
        times = np.asarray(t, dtype=np.float64)
        signal = self.signals.get(component)
        if signal is None:
            return np.zeros_like(times)
        active = (times >= 0.0) & (times <= self.duration)
        return np.where(active, np.clip(signal.value(times), 0.0, 1.0), 0.0)

    def shifted(self, t_start: float) -> "ScheduledWorkload":
        """This workload scheduled to begin at absolute time ``t_start``."""
        return ScheduledWorkload(self, t_start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, duration={self.duration})"


class ScheduledWorkload:
    """A workload placed on the absolute timeline at ``t_start``.

    Device models evaluate utilization in absolute simulation time; this
    adapter translates, so the same workload object can run back-to-back
    in a schedule (the power-aware scheduling extension relies on it).
    """

    def __init__(self, workload: Workload, t_start: float):
        if t_start < 0.0:
            raise WorkloadError(f"start time must be non-negative, got {t_start}")
        self.workload = workload
        self.t_start = float(t_start)

    @property
    def t_end(self) -> float:
        return self.t_start + self.workload.duration

    @property
    def name(self) -> str:
        return self.workload.name

    def utilization(self, component: str, t: np.ndarray | float) -> np.ndarray:
        return self.workload.utilization(component, np.asarray(t, dtype=np.float64) - self.t_start)


@dataclass(frozen=True)
class Phase:
    """One contiguous stretch of a phased workload.

    ``loads`` maps components to constant utilization levels during the
    phase; components absent from a phase are idle in it.
    """

    name: str
    duration: float
    loads: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.duration <= 0.0:
            raise WorkloadError(f"phase {self.name!r} duration must be positive")
        for component, level in self.loads.items():
            if not 0.0 <= level <= 1.0:
                raise WorkloadError(
                    f"phase {self.name!r}: load for {component} must be in [0,1], got {level}"
                )


class PhasedWorkload(Workload):
    """Workload assembled from an ordered sequence of :class:`Phase`.

    Optional ``modulation`` signals (pulse trains, ramps) are *added* to
    the piecewise-constant phase levels per component; the result is
    still clipped to [0, 1] at evaluation.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        modulation: Mapping[str, Signal] | None = None,
        metadata: Mapping[str, object] | None = None,
    ):
        if not phases:
            raise WorkloadError("phased workload needs at least one phase")
        self.phases = list(phases)
        boundaries = np.cumsum([p.duration for p in phases])
        duration = float(boundaries[-1])
        components = sorted({c for p in phases for c in p.loads})
        signals: dict[str, Signal] = {}
        for component in components:
            levels = [0.0] + [p.loads.get(component, 0.0) for p in phases] + [0.0]
            breakpoints = [0.0] + boundaries.tolist()
            base = PiecewiseConstantSignal(breakpoints, levels)
            extra = (modulation or {}).get(component)
            signals[component] = base if extra is None else SumSignal(base, extra)
        # Modulation-only components (no phase levels) are allowed too.
        for component, extra in (modulation or {}).items():
            if component not in signals:
                signals[component] = extra
        super().__init__(name, duration, signals, metadata)

    def phase_boundaries(self) -> list[tuple[str, float, float]]:
        """(name, t_start, t_end) per phase — the tagging feature's
        natural anchors."""
        out = []
        t = 0.0
        for phase in self.phases:
            out.append((phase.name, t, t + phase.duration))
            t += phase.duration
        return out
