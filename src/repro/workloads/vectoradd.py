"""Vector-add GPU workload (the paper's Figure 5).

"This workload first generates the data on the host side and then
transfers the data to the GPU for the vector addition, so for the first
10 or so seconds, the GPU hasn't been given any work to do.  After the
data is generated and handed off to the GPU for computation, the power
consumption increases dramatically where it remains for the remainder of
the computation."  Temperature rises steadily throughout the compute
phase (the device thermal model produces that from the power signal).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.signals import ExponentialApproachSignal, SumSignal
from repro.workloads.base import Component, Phase, PhasedWorkload


class VectorAddWorkload(PhasedWorkload):
    """Host datagen -> H2D transfer -> sustained vector-add loop.

    Parameters
    ----------
    datagen_seconds:
        Host-side generation time ("the first 10 or so seconds").
    compute_seconds:
        GPU compute time (Figure 5 spans ~100 s total).
    """

    def __init__(self, datagen_seconds: float = 10.0, compute_seconds: float = 85.0,
                 transfer_seconds: float = 3.0):
        for label, value in [("datagen", datagen_seconds),
                             ("compute", compute_seconds),
                             ("transfer", transfer_seconds)]:
            if value <= 0.0:
                raise WorkloadError(f"{label} time must be positive, got {value}")
        phases = [
            # GPU idle-but-armed while the host generates data; the board
            # shows the same slow creep as the NOOP case (context resident).
            Phase("datagen", datagen_seconds, {
                Component.GPU_SM: 0.08,
            }),
            Phase("transfer", transfer_seconds, {
                Component.GPU_PCIE: 0.95,
                Component.GPU_MEM: 0.45,
                Component.GPU_SM: 0.10,
            }),
            Phase("compute", compute_seconds, {
                Component.GPU_SM: 0.85,
                Component.GPU_MEM: 0.90,   # vector add is bandwidth-bound
                Component.GPU_PCIE: 0.05,
            }),
        ]
        modulation = {
            # The slow engagement ramp observed before the jump.
            Component.GPU_SM: SumSignal(
                ExponentialApproachSignal(0.0, 2.0, -0.06, 0.0),
            ),
        }
        super().__init__(
            name="gpu-vector-add", phases=phases, modulation=modulation,
            metadata={
                "datagen_seconds": datagen_seconds,
                "transfer_seconds": transfer_seconds,
                "compute_seconds": compute_seconds,
            },
        )
