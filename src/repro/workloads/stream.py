"""STREAM-style memory-bandwidth workload.

The classic triad kernel (a = b + s*c): almost no arithmetic intensity,
memory subsystem saturated.  Useful for exercising the DRAM-dominant
corner of every platform's power model — the corner where the paper's
per-domain mechanisms (BG/Q DRAM domain, RAPL's DRAM plane) separate
from board-level-only mechanisms (NVML).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Component, Phase, PhasedWorkload


def triad_seconds(array_bytes: int, bandwidth_Bps: float, iterations: int) -> float:
    """Runtime of ``iterations`` triad sweeps: 3 streams per element."""
    if array_bytes <= 0 or iterations <= 0:
        raise WorkloadError("array size and iterations must be positive")
    if bandwidth_Bps <= 0.0:
        raise WorkloadError("bandwidth must be positive")
    return iterations * 3.0 * array_bytes / bandwidth_Bps


class StreamTriadWorkload(PhasedWorkload):
    """STREAM triad on a host CPU: DRAM pinned, cores half-busy.

    Parameters
    ----------
    array_bytes:
        Working-set size per array (3 arrays totalling 3x this).
    iterations:
        Sweep count.
    bandwidth_Bps:
        Sustained memory bandwidth of the socket.
    """

    def __init__(self, array_bytes: int = 1 << 30, iterations: int = 200,
                 bandwidth_Bps: float = 35e9):
        duration = triad_seconds(array_bytes, bandwidth_Bps, iterations)
        phases = [
            Phase("init", max(0.5, duration * 0.02), {
                Component.CPU_CORES: 0.35,
                Component.CPU_DRAM: 0.60,
            }),
            Phase("triad", duration, {
                # Bandwidth-bound: cores mostly waiting on memory.
                Component.CPU_CORES: 0.45,
                Component.CPU_UNCORE: 0.70,
                Component.CPU_DRAM: 0.97,
            }),
            Phase("verify", max(0.5, duration * 0.05), {
                Component.CPU_CORES: 0.55,
                Component.CPU_DRAM: 0.50,
            }),
        ]
        super().__init__(
            name="stream-triad", phases=phases,
            metadata={
                "array_bytes": array_bytes,
                "iterations": iterations,
                "bandwidth_Bps": bandwidth_Bps,
                "triad_seconds": duration,
            },
        )


class BgqStreamWorkload(PhasedWorkload):
    """The same kernel on BG/Q nodes: DRAM domain dominant, network
    quiet — the inverse of the MMPS signature."""

    def __init__(self, duration: float = 300.0):
        if duration <= 2.0:
            raise WorkloadError("BG/Q STREAM run needs a few seconds")
        phases = [
            Phase("triad", duration, {
                Component.BGQ_CHIP_CORE: 0.45,
                Component.BGQ_DRAM: 0.97,
                Component.BGQ_SRAM: 0.25,
                # Interconnect idle: no halo, no messaging.
            }),
        ]
        super().__init__(name="bgq-stream", phases=phases,
                         metadata={"duration": duration})
