"""NOOP workloads.

The paper uses a no-op kernel in two places:

* on a K20 GPU (Figure 4), where power climbs *gradually* for about five
  seconds after the kernel loop starts — attributed to the lock-step
  thread scheduler gradually engaging — before leveling off; and
* on the Xeon Phi (Figure 7), where a no-op run is observed through both
  collection paths to expose the in-band API's power perturbation.

Both are modeled as a low-but-nonzero utilization whose onset is an
exponential approach rather than a step.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.signals import ExponentialApproachSignal
from repro.workloads.base import Component, Workload


class GpuNoopWorkload(Workload):
    """Kernel-launch loop of empty kernels on a GPU.

    Parameters
    ----------
    duration:
        Loop run time (Figure 4 spans ~12.5 s).
    ramp_tau:
        Time constant of the slow engagement; the figure levels off
        around 5 s, consistent with tau ~= 1.5 s.
    level:
        Asymptotic SM utilization of the launch loop (small: the kernels
        do nothing, but the scheduler and launch path stay busy).
    """

    def __init__(self, duration: float = 12.5, ramp_tau: float = 1.5,
                 level: float = 0.22):
        if not 0.0 < level <= 1.0:
            raise WorkloadError(f"level must be in (0,1], got {level}")
        signals = {
            Component.GPU_SM: ExponentialApproachSignal(0.0, ramp_tau, 0.0, level),
            # Launch path exercises PCIe slightly.
            Component.GPU_PCIE: ExponentialApproachSignal(0.0, ramp_tau, 0.0, 0.05),
        }
        super().__init__(
            name="gpu-noop", duration=duration, signals=signals,
            metadata={"ramp_tau": ramp_tau, "level": level},
        )


class PhiNoopWorkload(Workload):
    """No-op occupation of a Xeon Phi card (the Figure 7 workload).

    The card sits near idle; all interesting structure in Figure 7 comes
    from the *collection path* (SysMgmt API wakes cores; the MICRAS
    daemon read does not), so the workload itself is a whisper of load
    from the resident coprocessor OS.
    """

    def __init__(self, duration: float = 120.0, level: float = 0.03):
        if not 0.0 <= level <= 1.0:
            raise WorkloadError(f"level must be in [0,1], got {level}")
        signals = {
            Component.PHI_CORES: ExponentialApproachSignal(0.0, 2.0, 0.0, level),
        }
        super().__init__(
            name="phi-noop", duration=duration, signals=signals,
            metadata={"level": level},
        )
