"""Phase-based workload models.

A workload is a set of per-component *utilization* signals (each in
[0, 1]) over a fixed duration.  Device power models translate component
utilization into watts; the figures in the paper are reproduced by the
composition of a workload model and a device model, observed through a
vendor collection mechanism.
"""

from repro.workloads.base import (
    Component,
    Phase,
    PhasedWorkload,
    Workload,
)
from repro.workloads.mmps import MmpsWorkload
from repro.workloads.gaussian import GaussianEliminationWorkload, OffloadGaussianWorkload
from repro.workloads.noop import GpuNoopWorkload, PhiNoopWorkload
from repro.workloads.vectoradd import VectorAddWorkload
from repro.workloads.stream import BgqStreamWorkload, StreamTriadWorkload
from repro.workloads.toy import FixedRuntimeToyWorkload, IdleWorkload

__all__ = [
    "Component",
    "Phase",
    "Workload",
    "PhasedWorkload",
    "MmpsWorkload",
    "GaussianEliminationWorkload",
    "OffloadGaussianWorkload",
    "GpuNoopWorkload",
    "PhiNoopWorkload",
    "VectorAddWorkload",
    "FixedRuntimeToyWorkload",
    "IdleWorkload",
    "StreamTriadWorkload",
    "BgqStreamWorkload",
]
