"""MMPS — the million-messages-per-second interconnect benchmark.

The paper's Figures 1 and 2 show BG/Q power during a run of the ALCF
MMPS benchmark [8], which "measures the interconnect messaging rate, the
number of messages that can be communicated to and from a node within a
unit of time".  The load signature is therefore network-dominated: the
HSS network, optics and link chips run near saturation, the chip cores
run the messaging stack at a steady moderate-high level, and DRAM traffic
is modest.

The model also provides the benchmark's *headline number* — achievable
messages per second as a function of message size and pairing — from a
classic latency/bandwidth (postal) model, so the runtime examples can
report a figure of merit alongside the power trace.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.signals import PeriodicPulseSignal, RampSignal, SumSignal
from repro.workloads.base import Component, Phase, PhasedWorkload

#: Per-message software/injection overhead on a BG/Q-class NIC (seconds).
DEFAULT_MESSAGE_OVERHEAD_S = 0.55e-6
#: Link bandwidth per node, bytes/second (BG/Q: 10 links x 2 GB/s).
DEFAULT_LINK_BANDWIDTH_BPS = 20e9


def messaging_rate(message_bytes: int,
                   overhead_s: float = DEFAULT_MESSAGE_OVERHEAD_S,
                   bandwidth_Bps: float = DEFAULT_LINK_BANDWIDTH_BPS) -> float:
    """Messages/second/node for a given message size (postal model).

    Rate is limited by the larger of per-message overhead and wire time;
    for tiny messages this lands in the order of a couple of million
    messages per second per node, which is where the benchmark's name
    comes from.
    """
    if message_bytes <= 0:
        raise WorkloadError(f"message size must be positive, got {message_bytes}")
    per_message = max(overhead_s, message_bytes / bandwidth_Bps)
    return 1.0 / per_message


class MmpsWorkload(PhasedWorkload):
    """MMPS run: short ramp-in, sustained messaging, short drain.

    Parameters
    ----------
    duration:
        Total run length in seconds (the paper's BPM view spans a ~30 min
        window at ~4-minute samples; the MonEQ view is ~25 min at 560 ms).
    message_bytes:
        Message size; sets the reported messaging rate and shifts load
        between cores (small messages) and links (large messages).
    intensity:
        Scales all loads; 1.0 is the full benchmark.
    """

    def __init__(self, duration: float = 1500.0, message_bytes: int = 32,
                 intensity: float = 1.0):
        if not 0.0 < intensity <= 1.0:
            raise WorkloadError(f"intensity must be in (0,1], got {intensity}")
        if duration < 30.0:
            raise WorkloadError("MMPS needs >= 30 s (ramp + sustain + drain)")
        rate = messaging_rate(message_bytes)
        # Small messages are overhead-bound (cores hot); large are
        # bandwidth-bound (links hot).
        overhead_bound = rate * DEFAULT_MESSAGE_OVERHEAD_S  # ~1 when small
        core_load = intensity * (0.55 + 0.25 * overhead_bound)
        net_load = intensity * 0.95
        ramp, drain = 10.0, 10.0
        sustain = duration - ramp - drain
        phases = [
            Phase("ramp", ramp, {
                Component.BGQ_CHIP_CORE: core_load * 0.5,
                Component.BGQ_HSS: net_load * 0.5,
                Component.BGQ_OPTICS: net_load * 0.5,
                Component.BGQ_LINK_CHIP: net_load * 0.5,
                Component.BGQ_DRAM: 0.2 * intensity,
                Component.BGQ_SRAM: 0.3 * intensity,
                Component.NETWORK: net_load * 0.5,
            }),
            Phase("sustain", sustain, {
                Component.BGQ_CHIP_CORE: core_load,
                Component.BGQ_HSS: net_load,
                Component.BGQ_OPTICS: net_load,
                Component.BGQ_LINK_CHIP: net_load,
                Component.BGQ_DRAM: 0.3 * intensity,
                Component.BGQ_SRAM: 0.4 * intensity,
                Component.BGQ_PCIE: 0.1 * intensity,
                Component.NETWORK: net_load,
            }),
            Phase("drain", drain, {
                Component.BGQ_CHIP_CORE: core_load * 0.3,
                Component.BGQ_HSS: net_load * 0.3,
                Component.BGQ_OPTICS: net_load * 0.3,
                Component.BGQ_LINK_CHIP: net_load * 0.3,
                Component.NETWORK: net_load * 0.3,
            }),
        ]
        # Gentle sawtooth on the cores: message-pool refill every ~45 s
        # gives the BPM-visible waviness of Figure 1.
        modulation = {
            Component.BGQ_CHIP_CORE: SumSignal(
                PeriodicPulseSignal(period=45.0, duty=0.2, amplitude=-0.08,
                                    t0=ramp, t1=ramp + sustain),
                RampSignal(ramp, ramp + sustain, 0.0, 0.04),
            ),
        }
        super().__init__(
            name="mmps", phases=phases, modulation=modulation,
            metadata={
                "message_bytes": message_bytes,
                "messages_per_second_per_node": rate,
                "intensity": intensity,
            },
        )

    @property
    def rate(self) -> float:
        """Messages per second per node under this configuration."""
        return float(self.metadata["messages_per_second_per_node"])
