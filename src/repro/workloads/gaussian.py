"""Gaussian elimination workloads.

Two variants appear in the paper:

* a host-CPU run observed through RAPL (Figure 3), which shows a high
  sustained package load with a *rhythmic ~5 W drop* and "tiny spikes at
  regular intervals" between the drops, and
* an offloaded run on Xeon Phi cards (Figure 8), where "data generation
  takes place for about the first 100 seconds; after which data is
  transferred to the cards and computation begins" — host-side datagen
  leaves the cards idle, then card power jumps for the compute phase.

The compute-time model is the textbook (2/3)n^3 flop count over an
effective flop rate, so matrix size maps to duration the way a real run
would scale.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.signals import PeriodicPulseSignal, SumSignal
from repro.workloads.base import Component, Phase, PhasedWorkload


def elimination_seconds(n: int, gflops: float) -> float:
    """Runtime of LU-style elimination of an n x n system at a sustained
    ``gflops`` rate."""
    if n <= 0:
        raise WorkloadError(f"matrix size must be positive, got {n}")
    if gflops <= 0.0:
        raise WorkloadError(f"flop rate must be positive, got {gflops}")
    flops = (2.0 / 3.0) * float(n) ** 3
    return flops / (gflops * 1e9)


class GaussianEliminationWorkload(PhasedWorkload):
    """Host-CPU Gaussian elimination (the Figure 3 workload).

    Parameters
    ----------
    n:
        Matrix dimension; sets the duration via the flop-count model.
    gflops:
        Sustained host flop rate (Sandy Bridge-era default).
    sync_period:
        Seconds between panel-factorization sync points; each produces
        the figure's rhythmic utilization drop, with a small pivot-search
        spike midway between drops.
    """

    def __init__(self, n: int = 12_000, gflops: float = 22.0,
                 sync_period: float = 5.0):
        if sync_period <= 0.2:
            raise WorkloadError("sync period too short to resolve")
        duration = elimination_seconds(n, gflops)
        phases = [
            Phase("eliminate", duration, {
                Component.CPU_CORES: 0.92,
                Component.CPU_DRAM: 0.55,
                Component.CPU_UNCORE: 0.35,
            }),
        ]
        modulation = {
            # The rhythmic drop: cores stall on the panel broadcast.
            # -0.13 of core utilization x the core plane's dynamic range
            # is the paper's "rhythmic drop of about 5 Watts".
            Component.CPU_CORES: SumSignal(
                PeriodicPulseSignal(period=sync_period, duty=0.08,
                                    amplitude=-0.13, t0=0.0, t1=duration),
                # The tiny spike between drops: pivot search bursts.
                PeriodicPulseSignal(period=sync_period, duty=0.04,
                                    amplitude=+0.06, t0=0.0, t1=duration,
                                    phase=-sync_period / 2.0),
            ),
            # DRAM surges slightly while cores stall (writeback flush).
            Component.CPU_DRAM: PeriodicPulseSignal(
                period=sync_period, duty=0.08, amplitude=+0.10,
                t0=0.0, t1=duration,
            ),
        }
        super().__init__(
            name="gaussian-elimination", phases=phases, modulation=modulation,
            metadata={"n": n, "gflops": gflops, "sync_period": sync_period},
        )


class OffloadGaussianWorkload(PhasedWorkload):
    """Offloaded Gaussian elimination on a coprocessor (Figure 8).

    Host generates data (cards idle), transfers it over PCIe, then the
    cards compute; a short gather phase returns the result.

    Parameters
    ----------
    datagen_seconds:
        Host-side data-generation time ("about the first 100 seconds").
    n / gflops:
        Problem size and per-card sustained rate (Phi default).
    """

    def __init__(self, datagen_seconds: float = 100.0, n: int = 22_000,
                 gflops: float = 55.0):
        if datagen_seconds <= 0.0:
            raise WorkloadError("datagen time must be positive")
        compute = elimination_seconds(n, gflops)
        transfer = max(2.0, 8.0 * n * n / 6.0e9)  # doubles over ~6 GB/s PCIe
        phases = [
            Phase("datagen", datagen_seconds, {
                Component.CPU_CORES: 0.65,
                Component.CPU_DRAM: 0.45,
                # Cards idle: no phi.* load at all.
            }),
            Phase("transfer", transfer, {
                Component.CPU_CORES: 0.25,
                Component.PHI_PCIE: 0.95,
                Component.PHI_GDDR: 0.35,
            }),
            Phase("compute", compute, {
                Component.CPU_CORES: 0.10,
                Component.PHI_CORES: 0.93,
                Component.PHI_GDDR: 0.70,
            }),
            Phase("gather", max(1.0, transfer / 4.0), {
                Component.PHI_PCIE: 0.8,
                Component.CPU_CORES: 0.2,
            }),
        ]
        modulation = {
            # Panel syncs on the card, as on the host, but faster cadence.
            Component.PHI_CORES: PeriodicPulseSignal(
                period=4.0, duty=0.06, amplitude=-0.18,
                t0=datagen_seconds + transfer,
                t1=datagen_seconds + transfer + compute,
            ),
        }
        super().__init__(
            name="gaussian-offload", phases=phases, modulation=modulation,
            metadata={
                "n": n, "gflops": gflops,
                "datagen_seconds": datagen_seconds,
                "transfer_seconds": transfer,
                "compute_seconds": compute,
            },
        )
