"""``repro.api.errors`` — the supported exception hierarchy.

Everything raises under :class:`~repro.errors.ReproError`; v2 adds
:class:`~repro.errors.AccessDeniedError`, the POSIX-style denial the
permission gate (and the service's 403 envelope) originates from, and
:class:`~repro.errors.PackError`, the scenario-pack manifest rejection
that always names the offending field.
"""

from __future__ import annotations

from repro.errors import (
    AccessDeniedError,
    ChaosError,
    ConfigError,
    DeviceError,
    ExperimentExecutionError,
    MoneqBufferFullError,
    MoneqError,
    MoneqStateError,
    PackError,
    ReproError,
    SensorError,
)

__all__ = [
    "AccessDeniedError",
    "ChaosError",
    "ConfigError",
    "DeviceError",
    "ExperimentExecutionError",
    "MoneqBufferFullError",
    "MoneqError",
    "MoneqStateError",
    "PackError",
    "ReproError",
    "SensorError",
]
