"""``repro.api.chaos`` — fault injection and chaos scenarios.

Seeded fault plans and rules, the retry/breaker policies, the dark
reading sentinel, and the named scenario suite.
"""

from __future__ import annotations

from repro.chaos import (
    DARK_READING,
    SCENARIOS,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    run_scenario,
)

__all__ = [
    "DARK_READING",
    "SCENARIOS",
    "CircuitBreaker",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "run_scenario",
]
