"""``repro.api.session`` — the MonEQ session lifecycle.

The paper's "two lines of code" live here: :func:`initialize` /
:func:`finalize` around the region to profile, plus the configuration,
backend and result types a session is built from.
"""

from __future__ import annotations

from repro.core.moneq.api import (
    backends_for_node,
    finalize,
    initialize,
    profile_run,
)
from repro.core.moneq.backend import Backend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqResult, MoneqSession

__all__ = [
    "Backend",
    "MoneqConfig",
    "MoneqResult",
    "MoneqSession",
    "backends_for_node",
    "finalize",
    "initialize",
    "profile_run",
]
