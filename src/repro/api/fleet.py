"""``repro.api.fleet`` — federated multi-cluster fleet sweeps.

The fleet topology (named Mira-class sites over one federation), the
federated store that scatter-gathers queries across the sites' sharded
stores by the ``site/location`` prefix convention, the timed
fleet-wide sweep behind ``BENCH_fleet.json``, and the service
constructor that puts a fleet behind ``/v2/query/aggregate``.
"""

from __future__ import annotations

from repro.fleet import (
    DEFAULT_FLEET_SEED,
    Fleet,
    FleetSite,
    FleetSweepReport,
    build_fleet,
    cache_ablation,
    fleet_bench,
    fleet_sweep,
)
from repro.service import service_for_fleet
from repro.store import FederatedQueryPlan, FederatedStore, merge_partials

__all__ = [
    "DEFAULT_FLEET_SEED",
    "FederatedQueryPlan",
    "FederatedStore",
    "Fleet",
    "FleetSite",
    "FleetSweepReport",
    "build_fleet",
    "cache_ablation",
    "fleet_bench",
    "fleet_sweep",
    "merge_partials",
    "service_for_fleet",
]
