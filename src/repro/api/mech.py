"""``repro.api.mech`` — vendor mechanisms as declared compositions.

The mechanism layer's supported types (spec, channel, freshness,
capability, source) plus the registry, and — new in v2 — the POSIX
identities a channel crossing is checked against:
:class:`~repro.host.permissions.Credentials` with the stock ``ROOT``
and ``USER`` pair, so callers can exercise the permission gate without
reaching into implementation modules.
"""

from __future__ import annotations

# The mechanism module's Backend base lives in the session layer; load
# it first so the moneq <-> mech import cycle resolves from the side
# that works regardless of what the consumer imported before us.
import repro.core.moneq  # noqa: F401
from repro.host.permissions import ROOT, USER, Credentials
from repro.mech import (
    AccessChannel,
    CapabilityDecl,
    FreshnessModel,
    MechanismSpec,
    SensorSource,
    mechanisms,
)
from repro.mech.mechanism import Mechanism

__all__ = [
    "ROOT",
    "USER",
    "AccessChannel",
    "CapabilityDecl",
    "Credentials",
    "FreshnessModel",
    "Mechanism",
    "MechanismSpec",
    "SensorSource",
    "mechanisms",
]
