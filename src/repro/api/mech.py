"""``repro.api.mech`` — vendor mechanisms as declared compositions.

The mechanism layer's supported types (spec, channel, freshness,
capability, source) plus the registry, and — new in v2 — the POSIX
identities a channel crossing is checked against:
:class:`~repro.host.permissions.Credentials` with the stock ``ROOT``
and ``USER`` pair, so callers can exercise the permission gate without
reaching into implementation modules.  The freshness-aware channel
cache (refresh-window hits skip the access-channel crossing,
byte-identically) is supported here too: the process-wide
:func:`channel_cache`, the :func:`channel_cache_disabled` ablation
guard, and the :class:`CachePlan` / :class:`FieldPlan` declarations a
source publishes.
"""

from __future__ import annotations

# The mechanism module's Backend base lives in the session layer; load
# it first so the moneq <-> mech import cycle resolves from the side
# that works regardless of what the consumer imported before us.
import repro.core.moneq  # noqa: F401
from repro.host.permissions import ROOT, USER, Credentials
from repro.mech import (
    AccessChannel,
    CachePlan,
    CapabilityDecl,
    ChannelCache,
    ChannelCacheStats,
    FieldPlan,
    FreshnessModel,
    MechanismSpec,
    SensorSource,
    channel_cache,
    channel_cache_disabled,
    mechanisms,
)
from repro.mech.mechanism import Mechanism

__all__ = [
    "ROOT",
    "USER",
    "AccessChannel",
    "CachePlan",
    "CapabilityDecl",
    "ChannelCache",
    "ChannelCacheStats",
    "Credentials",
    "FieldPlan",
    "FreshnessModel",
    "Mechanism",
    "MechanismSpec",
    "SensorSource",
    "channel_cache",
    "channel_cache_disabled",
    "mechanisms",
]
