"""``repro.api.exec`` — the experiment execution engine.

Process-parallel experiment specs and reports, plus the
content-addressed result cache.
"""

from __future__ import annotations

from repro.exec import (
    CacheStats,
    Engine,
    EngineStats,
    ExperimentReport,
    ExperimentSpec,
    ResultCache,
)

__all__ = [
    "CacheStats",
    "Engine",
    "EngineStats",
    "ExperimentReport",
    "ExperimentSpec",
    "ResultCache",
]
