"""``repro.api.packs`` — declarative scenario packs.

Manifest loading and validation (:func:`load_scenario`,
:func:`parse_scenario`), the pack catalog (:func:`all_packs`,
:func:`load_pack`), and the runner that compiles a pack onto the
experiment engine (:func:`run_pack`, :func:`compile_spec`).
Validation failures raise :class:`repro.api.errors.PackError`, always
naming the offending manifest field.
"""

from __future__ import annotations

from repro.packs import (
    SMOKE_PACKS,
    PackRunResult,
    ScenarioRun,
    ScenarioSpec,
    all_packs,
    canonical_manifest,
    compile_spec,
    execute_scenario,
    load_manifest,
    load_pack,
    load_scenario,
    packs_dir,
    parse_scenario,
    run_pack,
    scenario_from_mapping,
)

__all__ = [
    "SMOKE_PACKS",
    "PackRunResult",
    "ScenarioRun",
    "ScenarioSpec",
    "all_packs",
    "canonical_manifest",
    "compile_spec",
    "execute_scenario",
    "load_manifest",
    "load_pack",
    "load_scenario",
    "packs_dir",
    "parse_scenario",
    "run_pack",
    "scenario_from_mapping",
]
