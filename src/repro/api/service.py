"""``repro.api.service`` — the live monitoring query service.

The WSGI app and its in-process client, tenancy, the structured error
envelope classes, and the load generator behind ``BENCH_service.json``.
"""

from __future__ import annotations

from repro.service import (
    BadRequest,
    ClientResponse,
    Forbidden,
    MethodNotAllowed,
    NotFound,
    ServiceApp,
    ServiceClient,
    ServiceError,
    Tenant,
    TenantRegistry,
    Unauthorized,
    Unavailable,
    bench_service,
    build_rig,
    default_tenants,
    serve,
    service_for_machine,
    write_bench,
)

__all__ = [
    "BadRequest",
    "ClientResponse",
    "Forbidden",
    "MethodNotAllowed",
    "NotFound",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "Tenant",
    "TenantRegistry",
    "Unauthorized",
    "Unavailable",
    "bench_service",
    "build_rig",
    "default_tenants",
    "serve",
    "service_for_machine",
    "write_bench",
]
