"""``repro.api.data`` — the environmental data plane.

The sharded store and its query types (plans, readings, aggregates,
tail batches), the BG/Q environmental database, the write batcher,
and the analysis-side series constructors.
"""

from __future__ import annotations

from repro.analysis.compare import series_from_readings, store_series
from repro.bgq.envdb import EnvironmentalDatabase, EnvRecord
from repro.store import (
    Aggregate,
    FlushReport,
    QueryPlan,
    Reading,
    ShardedStore,
    ShardMap,
    TailBatch,
    WriteBatcher,
)

__all__ = [
    "Aggregate",
    "EnvRecord",
    "EnvironmentalDatabase",
    "FlushReport",
    "QueryPlan",
    "Reading",
    "ShardMap",
    "ShardedStore",
    "TailBatch",
    "WriteBatcher",
    "series_from_readings",
    "store_series",
]
