"""``repro.api`` — the versioned, supported public surface (v2).

Since API v2 the surface is **namespaced**: each sub-surface groups
one concern, and new code imports from the namespace it needs.

=====================  ====================================================
Namespace              Concern
=====================  ====================================================
``repro.api.session``  MonEQ session lifecycle (the two-line API)
``repro.api.mech``     vendor mechanisms, channels, POSIX credentials
``repro.api.data``     sharded store, envdb, readings, aggregates, tail
``repro.api.chaos``    fault plans, retry policies, scenarios
``repro.api.exec``     experiment engine and result cache
``repro.api.errors``   the supported exception hierarchy
``repro.api.service``  the live monitoring query service
``repro.api.fleet``    federated multi-cluster fleets and sweeps
``repro.api.packs``    declarative scenario packs over the engine
=====================  ====================================================

Compatibility policy
--------------------
* Names listed in a namespace's ``__all__`` are **supported**: they
  keep their signatures and semantics within a major version of the
  package, and removals or breaking changes are announced one minor
  release ahead via a deprecation note in ``docs/api.md``.
* Every v1 flat name (``repro.api.ShardedStore``, …) still resolves —
  through a shim that emits one :class:`DeprecationWarning` per name,
  pointing at its namespace home.  The flat aliases are scheduled for
  removal at API v3.
* Deep imports (``repro.core.moneq.session``, ``repro.bgq.envdb``, …)
  keep working — nothing is hidden — but they are implementation
  modules: they may move or change between minor releases without
  notice.  New code should import from a ``repro.api`` namespace.
* :data:`API_VERSION` identifies this surface; it bumps only when a
  supported name changes incompatibly.

See ``docs/api.md`` for the name-by-name reference and the v1 -> v2
migration table.
"""

from __future__ import annotations

from repro._compat import deprecated_alias
from repro._version import __version__
from repro.api import (
    chaos,
    data,
    errors,
    exec,
    fleet,
    mech,
    packs,
    service,
    session,
)

#: Version of the supported surface (not the package release).
API_VERSION = "2"

#: The nine namespaced sub-surfaces of API v2.
NAMESPACES = {
    "session": session,
    "mech": mech,
    "data": data,
    "chaos": chaos,
    "exec": exec,
    "errors": errors,
    "service": service,
    "fleet": fleet,
    "packs": packs,
}

#: flat name -> namespace name; built from the namespaces' ``__all__``
#: so the shim can never drift from the real surface.
_FLAT_ALIASES: dict[str, str] = {}
for _ns_name, _module in NAMESPACES.items():
    for _name in _module.__all__:
        if _name in _FLAT_ALIASES:  # pragma: no cover - import-time guard
            raise ImportError(
                f"API name {_name!r} exported by both "
                f"repro.api.{_FLAT_ALIASES[_name]} and repro.api.{_ns_name}"
            )
        _FLAT_ALIASES[_name] = _ns_name


def __getattr__(name: str):
    """PEP 562 shim: resolve a v1 flat name from its v2 namespace,
    warning once per name."""
    ns = _FLAT_ALIASES.get(name)
    if ns is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    return deprecated_alias(
        f"repro.api.{name}",
        f"repro.api.{ns}.{name}",
        getattr(NAMESPACES[ns], name),
    )


def __dir__():
    return sorted(set(globals()) | set(_FLAT_ALIASES))


__all__ = [
    "API_VERSION",
    "NAMESPACES",
    "__version__",
    "chaos",
    "data",
    "errors",
    "exec",
    "fleet",
    "mech",
    "packs",
    "service",
    "session",
]
