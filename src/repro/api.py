"""``repro.api`` — the versioned, supported public surface.

This module is the documented entry point for the package: everything a
consumer needs to profile a node (the paper's "two lines of code"),
query environmental data through the sharded store, configure sessions,
and catch errors, re-exported from one place.

Compatibility policy
--------------------
* Names listed in ``__all__`` here are **supported**: they keep their
  signatures and semantics within a major version of the package, and
  removals or breaking changes are announced one minor release ahead
  via a deprecation note in ``docs/api.md``.
* Deep imports (``repro.core.moneq.session``, ``repro.bgq.envdb``, …)
  keep working — nothing is hidden — but they are implementation
  modules: they may move or change between minor releases without
  notice.  New code should import from ``repro.api``.
* :data:`API_VERSION` identifies this surface; it bumps only when a
  supported name changes incompatibly.

See ``docs/api.md`` for the name-by-name reference.
"""

from __future__ import annotations

from repro._version import __version__
from repro.analysis.compare import series_from_readings, store_series
from repro.bgq.envdb import EnvironmentalDatabase, EnvRecord
from repro.chaos import (
    DARK_READING,
    SCENARIOS,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    run_scenario,
)
from repro.core.moneq.api import (
    backends_for_node,
    finalize,
    initialize,
    profile_run,
)
from repro.core.moneq.backend import Backend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqResult, MoneqSession
from repro.errors import (
    ChaosError,
    ConfigError,
    DeviceError,
    ExperimentExecutionError,
    MoneqBufferFullError,
    MoneqError,
    MoneqStateError,
    ReproError,
    SensorError,
)
from repro.exec import (
    CacheStats,
    Engine,
    EngineStats,
    ExperimentReport,
    ExperimentSpec,
    ResultCache,
)
from repro.mech import (
    AccessChannel,
    CapabilityDecl,
    FreshnessModel,
    MechanismSpec,
    SensorSource,
    mechanisms,
)
from repro.mech.mechanism import Mechanism
from repro.store import (
    Aggregate,
    FlushReport,
    QueryPlan,
    Reading,
    ShardedStore,
    ShardMap,
    WriteBatcher,
)

#: Version of the supported surface (not the package release).
API_VERSION = "1"

__all__ = [
    # session lifecycle — the paper's two-line API
    "initialize",
    "finalize",
    "profile_run",
    "backends_for_node",
    "Backend",
    "MoneqConfig",
    "MoneqSession",
    "MoneqResult",
    # mechanism layer — vendor paths as declared compositions
    "Mechanism",
    "MechanismSpec",
    "AccessChannel",
    "FreshnessModel",
    "CapabilityDecl",
    "SensorSource",
    "mechanisms",
    # environmental data plane
    "EnvironmentalDatabase",
    "EnvRecord",
    "ShardedStore",
    "ShardMap",
    "WriteBatcher",
    "Reading",
    "Aggregate",
    "QueryPlan",
    "FlushReport",
    "series_from_readings",
    "store_series",
    # fault injection and chaos scenarios
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "CircuitBreaker",
    "DARK_READING",
    "SCENARIOS",
    "run_scenario",
    # experiment execution engine
    "Engine",
    "EngineStats",
    "ExperimentSpec",
    "ExperimentReport",
    "ResultCache",
    "CacheStats",
    # error types
    "ReproError",
    "ConfigError",
    "DeviceError",
    "SensorError",
    "MoneqError",
    "MoneqStateError",
    "MoneqBufferFullError",
    "ExperimentExecutionError",
    "ChaosError",
    # metadata
    "API_VERSION",
    "__version__",
]
