"""Cross-mechanism trace comparisons.

The paper's Figure 1 vs Figure 2 contrast is quantified here:
the env-DB view shows the idle shelf before/after a job (long window,
coarse samples) while the MonEQ view does not (collection starts with
the application) but carries far more points and the same total power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import AnalysisError
from repro.sim.trace import TraceSeries
from repro.store import Reading, ShardedStore


def series_from_readings(readings: list[Reading], field: str,
                         name: str | None = None,
                         units: str = "") -> TraceSeries:
    """A :class:`TraceSeries` over one field of normalized readings.

    This is the adapter every store consumer uses instead of
    special-casing per-platform record shapes: any mechanism whose
    output has been normalized to :class:`repro.store.Reading` plots
    and compares through the same path.
    """
    if not readings:
        raise AnalysisError("cannot build a series from zero readings")
    return TraceSeries(
        np.asarray([r.timestamp for r in readings], dtype=np.float64),
        np.asarray([r.value(field) for r in readings], dtype=np.float64),
        name=name if name is not None else field,
        units=units,
    )


def store_series(store: ShardedStore, table: str, field: str,
                 t0: float, t1: float, location_prefix: str = "",
                 units: str = "") -> TraceSeries:
    """One field's series straight out of a sharded-store range query."""
    readings = store.range(table, t0, t1, location_prefix)
    return series_from_readings(readings, field,
                                name=f"{table}.{field}", units=units)


@dataclass(frozen=True)
class IdleVisibility:
    """Whether a trace shows a distinct idle shelf and where."""

    visible: bool
    idle_level: float
    active_level: float
    step_ratio: float


def idle_visibility(series: TraceSeries, threshold_ratio: float = 1.3) -> IdleVisibility:
    """Detect an idle shelf: cluster samples around the low and high
    levels and compare.

    ``visible`` is True when the trace contains a low cluster whose
    level is at least ``threshold_ratio`` below the high cluster *and*
    both clusters are populated — the Figure 1 signature.
    """
    if len(series) < 4:
        raise AnalysisError("idle detection needs at least 4 samples")
    values = series.values
    midpoint = 0.5 * (values.min() + values.max())
    low = values[values < midpoint]
    high = values[values >= midpoint]
    if len(low) == 0 or len(high) == 0:
        return IdleVisibility(False, float(values.min()), float(values.max()), 1.0)
    idle_level = float(low.mean())
    active_level = float(high.mean())
    ratio = active_level / idle_level if idle_level > 0 else np.inf
    # A real shelf needs multiple samples on both levels.
    visible = ratio >= threshold_ratio and len(low) >= 2 and len(high) >= 2
    return IdleVisibility(visible, idle_level, active_level, float(ratio))


@dataclass(frozen=True)
class Agreement:
    """How closely two mechanisms agree on the same underlying signal."""

    mean_a: float
    mean_b: float
    relative_difference: float
    sample_ratio: float


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference|."""
    if reference == 0.0:
        raise AnalysisError("reference value is zero")
    return abs(measured - reference) / abs(reference)


def series_agreement(a: TraceSeries, b: TraceSeries,
                     window: tuple[float, float] | None = None) -> Agreement:
    """Compare two mechanisms' views over a common window.

    ``sample_ratio`` is len(a)/len(b) — the paper's "many more data
    points than observed from the BPM" observation, quantified.
    """
    if window is not None:
        a = a.between(*window)
        b = b.between(*window)
    if len(a) == 0 or len(b) == 0:
        raise AnalysisError("agreement window excludes all samples")
    mean_a, mean_b = a.mean(), b.mean()
    return Agreement(
        mean_a=mean_a, mean_b=mean_b,
        relative_difference=relative_error(mean_a, mean_b),
        sample_ratio=len(a) / len(b),
    )
