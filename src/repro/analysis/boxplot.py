"""Boxplot statistics (Tukey convention), for Figure 7."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import AnalysisError


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers and outliers."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: np.ndarray) -> BoxplotStats:
    """Tukey boxplot statistics of one sample."""
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or len(data) == 0:
        raise AnalysisError("boxplot_stats needs a non-empty 1-D sample")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = data[(data >= low_fence) & (data <= high_fence)]
    outliers = data[(data < low_fence) | (data > high_fence)]
    return BoxplotStats(
        q1=float(q1), median=float(median), q3=float(q3),
        whisker_low=float(inside.min()), whisker_high=float(inside.max()),
        outliers=tuple(float(x) for x in np.sort(outliers)),
    )
