"""Trace export: CSV and JSON.

Downstream users (plotting scripts, notebooks, spreadsheets) need the
regenerated series out of the simulator; these helpers serialize
:class:`~repro.sim.trace.TraceSeries`/:class:`~repro.sim.trace.TraceSet`
to standard formats, and parse the CSV back for round-trip checks.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.analysis.stats import AnalysisError
from repro.sim.trace import TraceSeries, TraceSet


def traceset_to_csv(traces: TraceSet, float_format: str = "{:.6f}") -> str:
    """CSV with a ``time_s`` column plus one column per series."""
    if len(traces) == 0:
        raise AnalysisError("cannot export an empty TraceSet")
    header, table = traces.to_table()
    out = io.StringIO()
    out.write(",".join(header) + "\n")
    for row in table:
        out.write(",".join(float_format.format(x) for x in row) + "\n")
    return out.getvalue()


def series_to_csv(series: TraceSeries, **kwargs) -> str:
    """CSV of one series (time_s plus its name)."""
    return traceset_to_csv(TraceSet({series.name or "value": series}), **kwargs)


def csv_to_traceset(text: str, units: str = "W") -> TraceSet:
    """Parse a :func:`traceset_to_csv` document back into a TraceSet."""
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 2:
        raise AnalysisError("CSV needs a header and at least one row")
    header = lines[0].split(",")
    if header[0] != "time_s":
        raise AnalysisError(f"first column must be time_s, got {header[0]!r}")
    table = np.array([[float(x) for x in line.split(",")] for line in lines[1:]])
    if table.shape[1] != len(header):
        raise AnalysisError("row width does not match header")
    traces = TraceSet()
    for column, name in enumerate(header[1:], start=1):
        traces.add(name, TraceSeries(table[:, 0], table[:, column], name, units))
    return traces


def traceset_to_json(traces: TraceSet, indent: int | None = None) -> str:
    """JSON document: {"time_s": [...], "series": {name: {...}}}."""
    if len(traces) == 0:
        raise AnalysisError("cannot export an empty TraceSet")
    document = {
        "time_s": traces.times.tolist(),
        "series": {
            name: {
                "units": traces[name].units,
                "values": traces[name].values.tolist(),
            }
            for name in traces.names
        },
    }
    return json.dumps(document, indent=indent)


def json_to_traceset(text: str) -> TraceSet:
    """Inverse of :func:`traceset_to_json`."""
    document = json.loads(text)
    try:
        times = np.asarray(document["time_s"], dtype=np.float64)
        series_map = document["series"]
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed trace JSON: {exc}") from exc
    traces = TraceSet()
    for name, payload in series_map.items():
        traces.add(name, TraceSeries(
            times, np.asarray(payload["values"], dtype=np.float64),
            name, payload.get("units", ""),
        ))
    return traces
