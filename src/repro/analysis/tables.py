"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import AnalysisError
from repro.store import Aggregate


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None, float_format: str = "{:.4f}") -> str:
    """Render a simple aligned table.

    Floats use ``float_format``; everything else uses str().
    """
    if not headers:
        raise AnalysisError("table needs headers")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row of {len(row)} cells does not match {len(headers)} headers"
            )
        rendered_rows.append([
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_aggregates(aggregates: Sequence[Aggregate],
                      title: str | None = None) -> str:
    """Render store aggregate rows (the ``repro store bench`` output)."""
    if not aggregates:
        raise AnalysisError("no aggregates to render")
    rows = [
        (a.location, a.field, a.window_start, a.window_end,
         a.count, a.minimum, a.mean, a.maximum)
        for a in aggregates
    ]
    return format_table(
        ("location", "field", "t0", "t1", "n", "min", "mean", "max"),
        rows, title=title, float_format="{:.2f}",
    )
