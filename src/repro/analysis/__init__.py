"""Trace analysis: statistics, boxplots, energy, comparisons, tables."""

from repro.analysis.stats import Summary, summarize, welch_ttest
from repro.analysis.boxplot import BoxplotStats, boxplot_stats
from repro.analysis.compare import (
    idle_visibility,
    relative_error,
    series_agreement,
)
from repro.analysis.tables import format_table

__all__ = [
    "Summary",
    "summarize",
    "welch_ttest",
    "BoxplotStats",
    "boxplot_stats",
    "idle_visibility",
    "series_agreement",
    "relative_error",
    "format_table",
]
