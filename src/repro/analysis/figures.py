"""Terminal rendering of time series.

The repository is terminal-first: every figure the harness regenerates
can be eyeballed as an ASCII chart (`python -m repro fig3`), which is
how EXPERIMENTS.md claims were sanity-checked.  Values are binned onto
a character grid column-by-column; each column shows the min..max band
of its bin so short spikes stay visible at any width.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import AnalysisError
from repro.sim.trace import TraceSeries


def ascii_chart(series: TraceSeries, width: int = 72, height: int = 16,
                title: str | None = None) -> str:
    """Render a series as an ASCII band chart."""
    if len(series) == 0:
        raise AnalysisError("cannot chart an empty series")
    if width < 8 or height < 4:
        raise AnalysisError(f"chart too small: {width}x{height}")
    times, values = series.times, series.values
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        hi = lo + 1.0
    # Bin samples into columns.
    edges = np.linspace(times[0], times[-1] + 1e-12, width + 1)
    column_lo = np.full(width, np.nan)
    column_hi = np.full(width, np.nan)
    indices = np.clip(np.searchsorted(edges, times, side="right") - 1, 0, width - 1)
    for column in range(width):
        mask = indices == column
        if mask.any():
            column_lo[column] = values[mask].min()
            column_hi[column] = values[mask].max()
    # Forward-fill empty columns (sparse series).
    for column in range(width):
        if np.isnan(column_lo[column]) and column > 0:
            column_lo[column] = column_lo[column - 1]
            column_hi[column] = column_hi[column - 1]

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return int(round((height - 1) * frac))

    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        if np.isnan(column_lo[column]):
            continue
        r0, r1 = row_of(column_lo[column]), row_of(column_hi[column])
        for row in range(min(r0, r1), max(r0, r1) + 1):
            grid[row][column] = "#"

    label_width = max(len(f"{hi:.1f}"), len(f"{lo:.1f}"))
    lines = []
    if title:
        lines.append(title)
    for row in range(height - 1, -1, -1):
        label = ""
        if row == height - 1:
            label = f"{hi:.1f}"
        elif row == 0:
            label = f"{lo:.1f}"
        lines.append(f"{label.rjust(label_width)} |" + "".join(grid[row]))
    axis = f"{'':{label_width}} +" + "-" * width
    footer = (f"{'':{label_width}}  t={times[0]:.1f}s"
              + f"t={times[-1]:.1f}s".rjust(width - len(f"t={times[0]:.1f}s") + 1))
    lines.append(axis)
    lines.append(footer)
    if series.units:
        lines.append(f"{'':{label_width}}  [{series.name or 'series'}: {series.units}]")
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line sparkline using block characters."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise AnalysisError("cannot sparkline an empty array")
    blocks = " .:-=+*#%@"
    # Downsample by mean into ``width`` buckets.
    buckets = np.array_split(data, min(width, data.size))
    means = np.array([b.mean() for b in buckets])
    lo, hi = means.min(), means.max()
    span = (hi - lo) or 1.0
    levels = ((means - lo) / span * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[level] for level in levels)
