"""Descriptive statistics and the Welch t-test.

The Figure 7 claim — "while slight, there is a statistically
significant difference between the two collection methods" — is checked
with Welch's unequal-variance t-test via SciPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ReproError


class AnalysisError(ReproError):
    """Bad input to an analysis routine."""


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float


def summarize(values: np.ndarray) -> Summary:
    """Describe a 1-D sample."""
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or len(data) == 0:
        raise AnalysisError("summarize needs a non-empty 1-D sample")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    return Summary(
        n=len(data),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
    )


@dataclass(frozen=True)
class TTestResult:
    """Welch t-test outcome."""

    statistic: float
    pvalue: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha


def welch_ttest(a: np.ndarray, b: np.ndarray) -> TTestResult:
    """Welch's unequal-variance t-test between two samples."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) < 2 or len(b) < 2:
        raise AnalysisError("welch_ttest needs at least 2 samples per arm")
    result = stats.ttest_ind(a, b, equal_var=False)
    return TTestResult(
        statistic=float(result.statistic),
        pvalue=float(result.pvalue),
        mean_difference=float(a.mean() - b.mean()),
    )
