"""The pack catalog: discovering and loading scenario manifests.

Built-in packs live in the repository's ``packs/`` directory, one
manifest per scenario, named after the file stem.  ``REPRO_PACKS_DIR``
points the catalog somewhere else (tests use it; deployments can ship
their own pack sets) — the override *replaces* the built-in directory,
keeping resolution unambiguous.

The chaos scenario catalog (``repro.chaos.SCENARIOS``) is **derived**
from the chaos-kind packs here: each ``kind = "chaos"`` manifest
becomes one :class:`~repro.chaos.scenarios.ChaosScenario` whose rule
factory resolves the manifest's fractional fault windows against the
requested duration — producing the exact
:class:`~repro.chaos.faults.FaultRule` tuples the legacy hand-written
catalog built.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import PackError
from repro.packs.manifest import SUFFIXES, load_manifest, load_scenario
from repro.packs.schema import ScenarioSpec

#: Environment override for the pack directory.
PACKS_DIR_ENV = "REPRO_PACKS_DIR"

#: The ROADMAP's reliability stories lead the chaos catalog in their
#: narrative order; packs added later follow alphabetically.
_CHAOS_ORDER = ("bmc_dark", "daemon_wedge", "bus_noise")


def packs_dir() -> Path:
    """The active pack directory (built-in unless overridden)."""
    override = os.environ.get(PACKS_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "packs"


def pack_paths() -> dict[str, Path]:
    """Pack name -> manifest path, sorted by name."""
    root = packs_dir()
    if not root.is_dir():
        return {}
    paths: dict[str, Path] = {}
    for path in sorted(root.iterdir()):
        if path.suffix not in SUFFIXES or not path.is_file():
            continue
        if path.stem in paths:
            raise PackError(
                f"pack {path.stem!r}: both {paths[path.stem].name} and "
                f"{path.name} exist in {root}")
        paths[path.stem] = path
    return paths


def pack_path(name: str) -> Path:
    """The manifest path for one named pack; unknown names fail loudly."""
    paths = pack_paths()
    path = paths.get(name)
    if path is None:
        raise PackError(
            f"pack {name!r}: not in the catalog at {packs_dir()} "
            f"(have: {', '.join(paths) or 'none'})")
    return path


def load_pack(name: str) -> ScenarioSpec:
    """Load and validate one catalog pack by name."""
    return load_scenario(pack_path(name))


def raw_pack(name: str) -> dict:
    """One catalog pack's raw manifest mapping (cache identity)."""
    return load_manifest(pack_path(name))


def all_packs() -> dict[str, ScenarioSpec]:
    """Every catalog pack, validated, sorted by name."""
    return {name: load_scenario(path)
            for name, path in pack_paths().items()}


def chaos_packs() -> dict[str, ScenarioSpec]:
    """The chaos-kind packs, in catalog (story, then name) order."""
    packs = {name: spec for name, spec in all_packs().items()
             if spec.kind == "chaos"}
    ordered = [name for name in _CHAOS_ORDER if name in packs]
    ordered += [name for name in packs if name not in _CHAOS_ORDER]
    return {name: packs[name] for name in ordered}


def chaos_scenarios() -> dict:
    """``repro.chaos.SCENARIOS``, derived from the chaos-kind packs."""
    from repro.chaos.scenarios import ChaosScenario
    from repro.packs.runtime import fault_rules

    catalog = {}
    for name, spec in chaos_packs().items():
        faults = spec.faults

        def rules(duration_s: float, rate: float, _faults=faults):
            return fault_rules(_faults, duration_s, rate)

        catalog[name] = ChaosScenario(
            name=name,
            summary=spec.summary,
            rules=rules,
            default_rate=faults.default_rate,
        )
    return catalog
