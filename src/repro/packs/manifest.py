"""Loading scenario-pack manifests from TOML or JSON files.

TOML is the authoring format (the seeded ``packs/*.toml`` catalog);
JSON is accepted too because it round-trips through the engine's
canonical-config machinery and makes programmatic manifest generation
trivial.  Parsing is two steps — decode the file, then validate the
mapping through :func:`repro.packs.schema.parse_scenario` — so every
shape error carries the manifest path and the offending dotted field.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

from repro.errors import PackError
from repro.packs.schema import ScenarioSpec, parse_scenario

#: Manifest suffixes the loader understands.
SUFFIXES = (".toml", ".json")


def load_manifest(path: str | Path) -> dict:
    """Decode one manifest file into its raw mapping (no validation)."""
    path = Path(path)
    if path.suffix not in SUFFIXES:
        raise PackError(
            f"pack manifest {str(path)!r}: unsupported suffix "
            f"{path.suffix!r} (expected one of {', '.join(SUFFIXES)})")
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise PackError(f"pack manifest {str(path)!r}: {exc}") from exc
    try:
        if path.suffix == ".toml":
            data = tomllib.loads(raw.decode("utf-8"))
        else:
            data = json.loads(raw.decode("utf-8"))
    except (tomllib.TOMLDecodeError, json.JSONDecodeError,
            UnicodeDecodeError) as exc:
        raise PackError(f"pack manifest {str(path)!r}: {exc}") from exc
    if not isinstance(data, dict):
        raise PackError(
            f"pack manifest {str(path)!r}: root must be a table, "
            f"got {type(data).__name__}")
    return data


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate one manifest file into a :class:`ScenarioSpec`."""
    path = Path(path)
    spec = parse_scenario(load_manifest(path), source=path.name)
    if spec.name != path.stem:
        raise PackError(
            f"pack {spec.name!r} ({path.name}): manifest name must match "
            f"the file stem {path.stem!r}")
    return spec


def scenario_from_mapping(data: dict, source: str = "") -> ScenarioSpec:
    """Validate an in-memory mapping (tests and programmatic callers)."""
    return parse_scenario(data, source=source)


def canonical_manifest(spec: ScenarioSpec) -> str:
    """Stable JSON text of a validated scenario — the identity the
    engine's content-addressed cache keys on.  ``source`` is excluded:
    the same scenario loaded from two paths is the same scenario."""
    import dataclasses

    payload = dataclasses.asdict(spec)
    payload.pop("source", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
