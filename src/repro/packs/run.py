"""Compiling packs onto the exec engine, and the one-call runner.

``compile_spec`` turns a raw manifest mapping into a dynamic
:class:`~repro.exec.spec.ExperimentSpec` whose module is
:mod:`repro.packs.runtime` — from there the engine's machinery applies
unchanged: content-addressed caching over (manifest text, overrides,
source fingerprint), the forked worker pool, byte-stable report
blocks.  The experiment id carries a short digest of the effective
config, so the same pack run twice with different seeds registers as
two distinct dynamic specs instead of colliding.

``run_pack`` is the front door the CLI and the shims use.  Kind
dispatch:

* ``experiments`` packs run the *named paper experiments directly* —
  no wrapper spec, so ``paper-core`` reproduces ``EXPERIMENTS.md``
  blocks byte-identically and shares their cache lines.
* ``fleet`` packs force the cache off: the sweep is wall-clock timed
  and a cached timing would be a lie.
* ``session``/``chaos`` packs dispatch their compiled spec.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.spec import ExperimentReport, ExperimentSpec, canonical_config
from repro.packs.manifest import SUFFIXES, load_manifest, scenario_from_mapping
from repro.packs.runtime import PackRunConfig
from repro.packs.schema import ScenarioSpec

#: Source modules whose text fingerprints every pack result — broad on
#: purpose: a pack run crosses the session core, the mechanism layer,
#: chaos, the testbeds, and every device family, so editing any of
#: them must invalidate cached pack results.
PACK_SOURCES = (
    "repro.packs",
    "repro.core",
    "repro.mech",
    "repro.chaos",
    "repro.testbeds",
    "repro.workloads",
    "repro.bgq",
    "repro.rapl",
    "repro.nvml",
    "repro.xeonphi",
    "repro.host",
    "repro.fleet",
)

#: The packs ``repro pack run --smoke`` (the CI step) exercises: one
#: live session on the newest mechanism, one chaos story.
SMOKE_PACKS = ("phi-micsmc", "bus_noise")

#: Rough serial cost by kind, for the engine's longest-first dispatch.
_COST_HINTS = {"session": 1.0, "chaos": 1.0, "fleet": 5.0}


@dataclass
class PackRunResult:
    """What one ``run_pack`` call produced."""

    spec: ScenarioSpec
    #: Dynamic experiment id (empty for ``experiments`` packs, which
    #: run the paper specs under their own ids).
    exp_id: str
    #: exp_id -> rendered block, in registry order.
    blocks: dict[str, ExperimentReport]
    #: exp_id -> raw JSON payload (session/chaos/fleet packs only).
    payloads: dict[str, dict] = field(default_factory=dict)
    stats: object = None


def compile_spec(raw: dict, seed: int | None = None,
                 duration_s: float | None = None,
                 rate: float | None = None,
                 ) -> tuple[ExperimentSpec, ScenarioSpec]:
    """Validate a raw manifest and register its dynamic engine spec.

    Returns ``(experiment_spec, scenario_spec)``.  ``experiments``
    packs have no wrapper spec and are rejected here — run them
    through :func:`run_pack`, which dispatches the paper specs.
    """
    from repro.errors import PackError
    from repro.exec.registry import register_spec

    scenario = scenario_from_mapping(raw)
    if scenario.kind == "experiments":
        raise PackError(
            f"pack {scenario.name!r}: 'experiments' packs run the "
            f"registered paper specs directly and do not compile")
    config = PackRunConfig(
        manifest=json.dumps(raw, sort_keys=True, separators=(",", ":")),
        seed=scenario.seed if seed is None else seed,
        duration_s=(scenario.duration_s if duration_s is None
                    else duration_s),
        rate=rate,
    )
    digest = hashlib.sha256(
        canonical_config(config).encode()).hexdigest()[:8]
    spec = ExperimentSpec(
        exp_id=f"pack:{scenario.name}@{digest}",
        title=scenario.summary,
        module="repro.packs.runtime",
        config=config,
        seed=config.seed,
        sources=PACK_SOURCES,
        cost_hint_s=_COST_HINTS.get(scenario.kind, 1.0),
    )
    return register_spec(spec), scenario


def _resolve(name: str) -> dict:
    """A catalog name, or a manifest path (has a suffix or separator)."""
    if name.endswith(SUFFIXES) or "/" in name:
        return load_manifest(Path(name))
    from repro.packs import catalog

    return catalog.raw_pack(name)


def run_pack(name: str | dict, jobs: int = 1, cache: bool = True,
             cache_root: str | None = None, seed: int | None = None,
             duration_s: float | None = None,
             rate: float | None = None) -> PackRunResult:
    """Run one pack through the engine.

    ``name`` is a catalog name, a manifest path, or a raw manifest
    mapping (the fleet shim folds CLI flags into the catalog manifest
    before dispatching).
    """
    from repro.exec.engine import Engine
    from repro.obs.instruments import PACK_RUN_SECONDS, PACK_RUNS

    raw = name if isinstance(name, dict) else _resolve(name)
    source = name if isinstance(name, str) else ""
    scenario = scenario_from_mapping(raw, source=source)
    PACK_RUNS.labels(scenario.name, scenario.kind).inc()
    t0 = time.perf_counter()

    if scenario.kind == "experiments":
        engine = Engine(jobs=jobs, cache=cache, cache_root=cache_root)
        blocks = engine.run(list(scenario.experiments))
        result = PackRunResult(spec=scenario, exp_id="", blocks=blocks,
                               stats=engine.stats)
    else:
        if scenario.kind == "fleet":
            cache = False  # wall-clock timings must never be cached
        spec, scenario = compile_spec(raw, seed=seed,
                                      duration_s=duration_s, rate=rate)
        engine = Engine(jobs=jobs, cache=cache, cache_root=cache_root)
        blocks = engine.run([spec.exp_id])
        payload = engine.stats.outcomes[f"{spec.exp_id}:all"].payload
        result = PackRunResult(spec=scenario, exp_id=spec.exp_id,
                               blocks=blocks,
                               payloads={spec.exp_id: payload},
                               stats=engine.stats)

    PACK_RUN_SECONDS.labels(scenario.name).observe(
        time.perf_counter() - t0)
    return result
