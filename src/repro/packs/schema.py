"""The scenario-pack schema: what a manifest may declare, validated.

A **scenario pack** is a declarative description of one run the repo
knows how to execute: which testbed to stand up, which vendor
mechanisms to poll, what phased workload to schedule, which fault plan
to install, and how long to run — or, for the other kinds, which paper
experiments to regenerate or which fleet profile to sweep.  The schema
is deliberately small and *strict*: unknown keys, wrong types, and
unknown mechanism/experiment names are all :class:`~repro.errors.
PackError`\\ s that name the offending field by its dotted path
(``workload.phases[2].duration_s``), so a typo in a manifest fails at
load time with a message that points at the line to fix.

Validation is pure data-shape checking; nothing here touches devices.
The four scenario kinds:

``session``
    Stand up a testbed, schedule the workload, run one MonEQ session
    (optionally under a fault plan) for ``duration_s``.
``chaos``
    A ``session`` whose fault plan is the point — the chaos catalog's
    scenarios are these packs, and ``repro chaos run`` executes them.
``experiments``
    Regenerate the named paper experiments through the exec engine
    (content-addressed cache and all); ``paper-core`` lists them all.
``fleet``
    The federated multi-cluster sweep plus the channel-cache ablation
    (wall-clock timed, therefore never cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PackError

#: Scenario kinds the runtime can execute.
KINDS = ("session", "chaos", "experiments", "fleet")

#: Testbed factories a session/chaos pack may name, and the vendor
#: paths each one offers.  ``fleet`` offers every registered mechanism
#: (resolved lazily against the live registry so a newly declared
#: mechanism is automatically available to packs).
TESTBED_KINDS = ("fleet", "rapl", "gpu", "phi")
TESTBED_MECHANISMS: dict[str, tuple[str, ...]] = {
    "rapl": ("rapl_msr", "rapl_powercap", "rapl_perf"),
    "gpu": ("nvml",),
    "phi": ("sysmgmt", "micras", "ipmb", "micsmc"),
}

#: GPU models a ``gpu`` testbed may select.
GPU_MODELS = ("k20", "k40")

_MISSING = object()


@dataclass(frozen=True)
class PhaseSpec:
    """One contiguous workload phase: component loads in [0, 1]."""

    name: str
    duration_s: float
    loads: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class WorkloadSpec:
    """A phased workload scheduled on every device the testbed carries
    (components are device-namespaced, so unknown ones are idle)."""

    name: str
    phases: tuple[PhaseSpec, ...]
    start_s: float = 5.0


@dataclass(frozen=True)
class TestbedSpec:
    """Which rig to stand up.  ``seed=None`` inherits the scenario
    seed (so ``--seed`` reseeds the hardware too)."""

    kind: str = "fleet"
    seed: int | None = None
    #: ``gpu`` testbeds only: which Kepler part, and an optional
    #: management power cap applied before the session starts.
    gpu_model: str = "k20"
    power_cap_w: float | None = None
    #: ``rapl`` testbeds only: simulated kernel release (gates which
    #: access paths exist — powercap needs 3.13, perf_event 3.14).
    kernel: str = "3.14"


@dataclass(frozen=True)
class FaultRuleSpec:
    """One fault rule, windowed by *fractions* of the run so the same
    manifest scales with ``--duration``.  ``rate=None`` means "the
    scenario rate" (the plan's ``default_rate``, or ``--rate``)."""

    mechanism: str
    rate: float | None = None
    kind: str = ""
    t_start_frac: float = 0.0
    #: ``None`` leaves the window open-ended (t_end = +inf), exactly
    #: like a legacy rule that names no end.
    t_end_frac: float | None = None


@dataclass(frozen=True)
class FaultPlanSpec:
    """The pack's fault plan: rules plus the scenario-level rate that
    rate-less rules inherit."""

    rules: tuple[FaultRuleSpec, ...]
    default_rate: float = 1.0


@dataclass(frozen=True)
class FleetSpec:
    """Fleet-sweep profile knobs (mirrors ``repro fleet sweep``)."""

    smoke: bool = True


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario pack — everything the runtime needs."""

    name: str
    kind: str
    summary: str
    duration_s: float = 12.0
    seed: int = 0xC4A05
    #: Explicit polling interval; ``None`` = the hardware floor.
    interval_s: float | None = None
    testbed: TestbedSpec = field(default_factory=TestbedSpec)
    #: Vendor paths to poll; empty = every path the testbed offers.
    mechanisms: tuple[str, ...] = ()
    workload: WorkloadSpec | None = None
    faults: FaultPlanSpec | None = None
    #: ``experiments`` kind: registered experiment ids, report order.
    experiments: tuple[str, ...] = ()
    fleet: FleetSpec | None = None
    #: Where the manifest came from (diagnostics only; not identity).
    source: str = ""


# -- validation -------------------------------------------------------------


def _fail(ctx: str, message: str) -> None:
    from repro.obs.instruments import PACK_VALIDATION_ERRORS

    PACK_VALIDATION_ERRORS.inc()
    raise PackError(f"pack {ctx or '<manifest>'}: {message}")


def _require_mapping(ctx: str, path: str, value: object) -> dict:
    if not isinstance(value, dict):
        _fail(ctx, f"{path} must be a table, got {type(value).__name__}")
    return value


def _check_keys(ctx: str, path: str, data: dict, allowed: tuple[str, ...]):
    for key in data:
        if key not in allowed:
            where = f"{path}.{key}" if path else str(key)
            _fail(ctx, f"unknown key {where!r} (allowed: "
                       f"{', '.join(allowed)})")


def _get(ctx: str, path: str, data: dict, key: str, kinds, default=_MISSING):
    """Fetch ``data[key]`` checked against ``kinds`` (a type tuple);
    a missing key returns ``default`` or fails if none was given."""
    where = f"{path}.{key}" if path else key
    if key not in data:
        if default is _MISSING:
            _fail(ctx, f"missing required key {where!r}")
        return default
    value = data[key]
    # bool is an int subclass; never accept it where a number is meant.
    if isinstance(value, bool) and bool not in kinds:
        _fail(ctx, f"{where} must be {_kind_names(kinds)}, got bool")
    if not isinstance(value, kinds):
        _fail(ctx, f"{where} must be {_kind_names(kinds)}, "
                   f"got {type(value).__name__}")
    return value


def _kind_names(kinds) -> str:
    names = {str: "a string", bool: "a boolean", list: "a list",
             dict: "a table"}
    if kinds == (int,):
        return "an integer"
    if set(kinds) <= {int, float}:
        return "a number"
    return names.get(kinds[0], kinds[0].__name__)


def _parse_phase(ctx: str, path: str, raw: object) -> PhaseSpec:
    data = _require_mapping(ctx, path, raw)
    _check_keys(ctx, path, data, ("name", "duration_s", "loads"))
    name = _get(ctx, path, data, "name", (str,))
    duration_s = float(_get(ctx, path, data, "duration_s", (int, float)))
    if duration_s <= 0.0:
        _fail(ctx, f"{path}.duration_s must be positive, got {duration_s}")
    loads_raw = _get(ctx, path, data, "loads", (dict,), default={})
    loads = []
    for component, level in loads_raw.items():
        where = f"{path}.loads.{component}"
        if isinstance(level, bool) or not isinstance(level, (int, float)):
            _fail(ctx, f"{where} must be a number, "
                       f"got {type(level).__name__}")
        if not 0.0 <= float(level) <= 1.0:
            _fail(ctx, f"{where} must be in [0, 1], got {level}")
        loads.append((str(component), float(level)))
    return PhaseSpec(name=name, duration_s=duration_s, loads=tuple(loads))


def _parse_workload(ctx: str, raw: object) -> WorkloadSpec:
    data = _require_mapping(ctx, "workload", raw)
    _check_keys(ctx, "workload", data, ("name", "phases", "start_s"))
    name = _get(ctx, "workload", data, "name", (str,))
    start_s = float(_get(ctx, "workload", data, "start_s", (int, float),
                         default=5.0))
    if start_s < 0.0:
        _fail(ctx, f"workload.start_s must be >= 0, got {start_s}")
    phases_raw = _get(ctx, "workload", data, "phases", (list,))
    if not phases_raw:
        _fail(ctx, "workload.phases must name at least one phase")
    phases = tuple(
        _parse_phase(ctx, f"workload.phases[{i}]", phase)
        for i, phase in enumerate(phases_raw)
    )
    return WorkloadSpec(name=name, phases=phases, start_s=start_s)


def _parse_testbed(ctx: str, raw: object) -> TestbedSpec:
    data = _require_mapping(ctx, "testbed", raw)
    _check_keys(ctx, "testbed", data,
                ("kind", "seed", "gpu_model", "power_cap_w", "kernel"))
    kind = _get(ctx, "testbed", data, "kind", (str,), default="fleet")
    if kind not in TESTBED_KINDS:
        _fail(ctx, f"testbed.kind must be one of "
                   f"{', '.join(TESTBED_KINDS)}; got {kind!r}")
    seed = _get(ctx, "testbed", data, "seed", (int,), default=None)
    gpu_model = _get(ctx, "testbed", data, "gpu_model", (str,),
                     default="k20")
    if gpu_model not in GPU_MODELS:
        _fail(ctx, f"testbed.gpu_model must be one of "
                   f"{', '.join(GPU_MODELS)}; got {gpu_model!r}")
    power_cap_w = _get(ctx, "testbed", data, "power_cap_w", (int, float),
                       default=None)
    if power_cap_w is not None and float(power_cap_w) <= 0.0:
        _fail(ctx, f"testbed.power_cap_w must be positive, got {power_cap_w}")
    for key in ("gpu_model", "power_cap_w"):
        if key in data and kind != "gpu":
            _fail(ctx, f"testbed.{key} only applies to the 'gpu' testbed "
                       f"(this one is {kind!r})")
    kernel = _get(ctx, "testbed", data, "kernel", (str,), default="3.14")
    if "kernel" in data and kind != "rapl":
        _fail(ctx, "testbed.kernel only applies to the 'rapl' testbed "
                   f"(this one is {kind!r})")
    return TestbedSpec(
        kind=kind, seed=seed, gpu_model=gpu_model,
        power_cap_w=None if power_cap_w is None else float(power_cap_w),
        kernel=kernel,
    )


def _parse_fault_rule(ctx: str, path: str, raw: object) -> FaultRuleSpec:
    data = _require_mapping(ctx, path, raw)
    _check_keys(ctx, path, data,
                ("mechanism", "rate", "kind", "t_start_frac", "t_end_frac"))
    mechanism = _get(ctx, path, data, "mechanism", (str,))
    rate = _get(ctx, path, data, "rate", (int, float), default=None)
    if rate is not None and not 0.0 <= float(rate) <= 1.0:
        _fail(ctx, f"{path}.rate must be in [0, 1], got {rate}")
    kind = _get(ctx, path, data, "kind", (str,), default="")
    t_start_frac = float(_get(ctx, path, data, "t_start_frac",
                              (int, float), default=0.0))
    t_end_frac = _get(ctx, path, data, "t_end_frac", (int, float),
                      default=None)
    for label, value in (("t_start_frac", t_start_frac),
                         ("t_end_frac", t_end_frac)):
        if value is not None and not 0.0 <= float(value) <= 1.0:
            _fail(ctx, f"{path}.{label} must be in [0, 1], got {value}")
    if t_end_frac is not None and float(t_end_frac) <= t_start_frac:
        _fail(ctx, f"{path}: window [{t_start_frac}, {t_end_frac}) is empty")
    return FaultRuleSpec(
        mechanism=mechanism,
        rate=None if rate is None else float(rate),
        kind=kind, t_start_frac=t_start_frac,
        t_end_frac=None if t_end_frac is None else float(t_end_frac),
    )


def _parse_faults(ctx: str, raw: object) -> FaultPlanSpec:
    data = _require_mapping(ctx, "faults", raw)
    _check_keys(ctx, "faults", data, ("rules", "default_rate"))
    default_rate = float(_get(ctx, "faults", data, "default_rate",
                              (int, float), default=1.0))
    if not 0.0 <= default_rate <= 1.0:
        _fail(ctx, f"faults.default_rate must be in [0, 1], "
                   f"got {default_rate}")
    rules_raw = _get(ctx, "faults", data, "rules", (list,))
    if not rules_raw:
        _fail(ctx, "faults.rules must name at least one rule")
    rules = tuple(
        _parse_fault_rule(ctx, f"faults.rules[{i}]", rule)
        for i, rule in enumerate(rules_raw)
    )
    return FaultPlanSpec(rules=rules, default_rate=default_rate)


def _parse_fleet(ctx: str, raw: object) -> FleetSpec:
    data = _require_mapping(ctx, "fleet", raw)
    _check_keys(ctx, "fleet", data, ("smoke",))
    return FleetSpec(smoke=_get(ctx, "fleet", data, "smoke", (bool,),
                                default=True))


def _registered_mechanisms() -> dict:
    # Importing the backends module registers the whole fleet; lazy so
    # schema validation of experiment/fleet packs stays device-free.
    import repro.core.moneq.backends  # noqa: F401
    from repro.mech import mechanisms

    return mechanisms()


def _check_mechanisms(ctx: str, spec_kind: str, testbed: TestbedSpec,
                      names: tuple[str, ...]) -> None:
    registry = _registered_mechanisms()
    offered = (tuple(registry) if testbed.kind == "fleet"
               else TESTBED_MECHANISMS[testbed.kind])
    seen: set[str] = set()
    for i, name in enumerate(names):
        if name not in registry:
            _fail(ctx, f"mechanisms[{i}]: unknown mechanism {name!r} "
                       f"(registered: {', '.join(registry)})")
        if name not in offered:
            _fail(ctx, f"mechanisms[{i}]: {name!r} is not available on "
                       f"the {testbed.kind!r} testbed "
                       f"(offers: {', '.join(offered)})")
        if name in seen:
            _fail(ctx, f"mechanisms[{i}]: duplicate mechanism {name!r}")
        seen.add(name)


def _check_experiments(ctx: str, names: tuple[str, ...]) -> None:
    from repro.exec.registry import ALL_SPECS

    for i, name in enumerate(names):
        if name not in ALL_SPECS:
            _fail(ctx, f"experiments[{i}]: unknown experiment {name!r} "
                       f"(registered: {', '.join(ALL_SPECS)})")


_TOP_KEYS = ("name", "kind", "summary", "duration_s", "seed", "interval_s",
             "mechanisms", "experiments", "testbed", "workload", "faults",
             "fleet")


def parse_scenario(data: dict, source: str = "") -> ScenarioSpec:
    """Validate one raw manifest mapping into a :class:`ScenarioSpec`.

    Raises :class:`~repro.errors.PackError` naming the offending field
    (dotted path into the manifest) on any unknown key, type mismatch,
    out-of-range value, or unknown mechanism/experiment/testbed name.
    """
    ctx = source or "<manifest>"
    if not isinstance(data, dict):
        _fail(ctx, f"manifest root must be a table, "
                   f"got {type(data).__name__}")
    name = _get(ctx, "", data, "name", (str,))
    if not name or "/" in name or name != name.strip():
        _fail(ctx, f"name must be a non-empty slug, got {name!r}")
    ctx = f"{name!r}" + (f" ({source})" if source else "")
    _check_keys(ctx, "", data, _TOP_KEYS)
    kind = _get(ctx, "", data, "kind", (str,))
    if kind not in KINDS:
        _fail(ctx, f"kind must be one of {', '.join(KINDS)}; got {kind!r}")
    summary = _get(ctx, "", data, "summary", (str,))
    duration_s = float(_get(ctx, "", data, "duration_s", (int, float),
                            default=12.0))
    if duration_s <= 0.0:
        _fail(ctx, f"duration_s must be positive, got {duration_s}")
    seed = _get(ctx, "", data, "seed", (int,), default=0xC4A05)
    if seed < 0:
        _fail(ctx, f"seed must be >= 0, got {seed}")
    interval_s = _get(ctx, "", data, "interval_s", (int, float),
                      default=None)
    if interval_s is not None and float(interval_s) <= 0.0:
        _fail(ctx, f"interval_s must be positive, got {interval_s}")

    mechanisms_raw = _get(ctx, "", data, "mechanisms", (list,), default=[])
    for i, entry in enumerate(mechanisms_raw):
        if not isinstance(entry, str):
            _fail(ctx, f"mechanisms[{i}] must be a string, "
                       f"got {type(entry).__name__}")
    mechanisms = tuple(mechanisms_raw)
    experiments_raw = _get(ctx, "", data, "experiments", (list,), default=[])
    for i, entry in enumerate(experiments_raw):
        if not isinstance(entry, str):
            _fail(ctx, f"experiments[{i}] must be a string, "
                       f"got {type(entry).__name__}")
    experiments = tuple(experiments_raw)

    testbed = (_parse_testbed(ctx, data["testbed"]) if "testbed" in data
               else TestbedSpec())
    workload = (_parse_workload(ctx, data["workload"])
                if "workload" in data else None)
    faults = _parse_faults(ctx, data["faults"]) if "faults" in data else None
    fleet = _parse_fleet(ctx, data["fleet"]) if "fleet" in data else None

    # Kind-specific shape rules, each naming the out-of-place section.
    if kind in ("session", "chaos"):
        if experiments:
            _fail(ctx, f"experiments does not apply to kind {kind!r}")
        if fleet is not None:
            _fail(ctx, f"fleet does not apply to kind {kind!r}")
        if kind == "chaos" and faults is None:
            _fail(ctx, "kind 'chaos' requires a [faults] section")
        _check_mechanisms(ctx, kind, testbed, mechanisms)
        if workload is not None:
            _validate_components(ctx, workload)
    elif kind == "experiments":
        for section in ("testbed", "workload", "faults", "fleet"):
            if section in data:
                _fail(ctx, f"{section} does not apply to kind 'experiments'")
        if mechanisms:
            _fail(ctx, "mechanisms does not apply to kind 'experiments'")
        if not experiments:
            _fail(ctx, "kind 'experiments' requires a non-empty "
                       "experiments list")
        _check_experiments(ctx, experiments)
    else:  # fleet
        for section in ("testbed", "workload", "faults"):
            if section in data:
                _fail(ctx, f"{section} does not apply to kind 'fleet'")
        if mechanisms or experiments:
            _fail(ctx, "mechanisms/experiments do not apply to kind 'fleet'")
        if fleet is None:
            fleet = FleetSpec()

    if faults is not None:
        _check_mechanisms(ctx, kind, TestbedSpec(kind="fleet"),
                          tuple(dict.fromkeys(
                              r.mechanism for r in faults.rules)))

    return ScenarioSpec(
        name=name, kind=kind, summary=summary, duration_s=duration_s,
        seed=seed,
        interval_s=None if interval_s is None else float(interval_s),
        testbed=testbed, mechanisms=mechanisms, workload=workload,
        faults=faults, experiments=experiments, fleet=fleet, source=source,
    )


def _validate_components(ctx: str, workload: WorkloadSpec) -> None:
    from repro.workloads.base import Component

    known = set(Component.all())
    for i, phase in enumerate(workload.phases):
        for component, _ in phase.loads:
            if component not in known:
                _fail(ctx, f"workload.phases[{i}].loads.{component}: "
                           f"unknown component (see repro.workloads.base."
                           f"Component)")
