"""The legacy ``repro chaos`` / ``repro fleet`` CLI surfaces, rerouted
through the pack runner.

Both commands keep their flags, their stdout bytes, and their exit
codes from before the scenario-pack refactor — the CLI smoke tests pin
them — but execution now flows through
:func:`repro.packs.run.run_pack`:

* ``chaos run`` dispatches the scenario's catalog manifest onto the
  exec engine with ``jobs=1`` (in-process, so the ``repro_chaos_*`` /
  ``repro_retry_*`` families land in this process's registry for the
  metric dump) and the cache off (a chaos run is live injection, not a
  cacheable result).  The summary line is rebuilt from the engine
  payload — floats round-trip JSON exactly, so the bytes match the
  legacy ``ScenarioResult.summary_line()``.
* ``fleet sweep`` runs the ``fleet-sweep`` catalog pack with the CLI's
  profile folded into the manifest; the shim writes ``--json`` output
  itself, byte-identical to what ``fleet_bench`` used to write.

``repro.__main__`` resolves these through
:func:`repro._compat.deprecated_alias`, so the old private entry
points keep working while pointing migrators at this module.
"""

from __future__ import annotations

import json
import sys

#: The catalog pack behind ``repro fleet sweep``.
FLEET_PACK = "fleet-sweep"


def summary_line(payload: dict) -> str:
    """The chaos summary line, byte-identical to the legacy
    ``ScenarioResult.summary_line()``, rebuilt from a pack payload."""
    s = payload["stats"]
    return (f"[repro chaos run] scenario={payload['pack']} "
            f"seed={payload['seed']} interval_s={payload['interval_s']:.3f} "
            f"ticks={payload['ticks']} faults={s['faults']} "
            f"recovered={s['recovered']} dark={s['dark']} "
            f"retries={s['retries']} backoff_s={s['backoff_s']:.6f} "
            f"breaker_opens={s['breaker_opens']} stale={s['stale']}")


def chaos_command(args: list[str]) -> int:
    """``repro chaos list|run`` — inspect the scenario catalog or run
    one named scenario over the fleet testbed, printing the injected
    faults' error-counter deltas, the ``repro_chaos_*`` /
    ``repro_retry_*`` families, and a byte-stable summary line."""
    from repro.analysis.tables import format_table
    from repro.chaos import SCENARIOS
    from repro.chaos.scenarios import DEFAULT_DURATION_S, DEFAULT_SEED
    from repro.obs import dump
    from repro.packs.run import run_pack

    usage = ("usage: python -m repro chaos list\n"
             "       python -m repro chaos run <scenario> [--seed N] "
             "[--duration S] [--rate R]")
    if not args:
        print(usage, file=sys.stderr)
        return 2

    if args[0] == "list":
        rows = [(s.name, f"{s.default_rate:g}", s.summary)
                for s in SCENARIOS.values()]
        print(format_table(
            ("scenario", "rate", "summary"), rows,
            title=f"[repro chaos list] {len(rows)} scenarios"))
        return 0

    if args[0] == "run":
        seed, duration_s, rate = DEFAULT_SEED, DEFAULT_DURATION_S, None
        positional: list[str] = []
        rest = args[1:]
        try:
            i = 0
            while i < len(rest):
                arg = rest[i]
                if arg in ("--seed", "--duration", "--rate"):
                    if i + 1 >= len(rest):
                        raise ValueError(f"{arg} needs a value")
                    value = rest[i + 1]
                    if arg == "--seed":
                        seed = int(value)
                    elif arg == "--duration":
                        duration_s = float(value)
                    else:
                        rate = float(value)
                    i += 2
                else:
                    positional.append(arg)
                    i += 1
        except ValueError as exc:
            print(f"chaos run: {exc}", file=sys.stderr)
            return 2
        if len(positional) != 1:
            print(f"chaos run: name exactly one scenario "
                  f"(have {sorted(SCENARIOS)})", file=sys.stderr)
            return 2
        name = positional[0]
        if name not in SCENARIOS:
            # The legacy wording, verbatim (what ChaosError carried).
            print(f"chaos run: unknown chaos scenario {name!r}; "
                  f"have {sorted(SCENARIOS)}", file=sys.stderr)
            return 2
        result = run_pack(name, jobs=1, cache=False, seed=seed,
                          duration_s=duration_s, rate=rate)
        payload = result.payloads[result.exp_id]
        if payload["error_deltas"]:
            rows = [(mechanism, kind, str(count))
                    for mechanism, kind, count in payload["error_deltas"]]
            print(format_table(
                ("mechanism", "kind", "errors"), rows,
                title="[chaos] repro_collector_errors_total deltas"))
        else:
            print("# no collector errors (every fault recovered)")
        chaos_lines = [line for line in dump().splitlines()
                       if line.startswith(("repro_chaos", "repro_retry"))]
        print("\n".join(chaos_lines))
        print(summary_line(payload))
        return 0

    print(usage, file=sys.stderr)
    return 2


def fleet_command(args: list[str]) -> int:
    """``repro fleet sweep [--smoke] [--json PATH]`` — run the
    federated multi-cluster sweep plus the channel-cache ablation as
    the ``fleet-sweep`` pack, gating on the realtime-factor floor, the
    >=5x crossings reduction, and byte-identity."""
    from repro.analysis.tables import format_table
    from repro.fleet.sweep import CACHE_REDUCTION_FLOOR, REALTIME_FLOOR
    from repro.packs import catalog
    from repro.packs.run import run_pack

    usage = "usage: python -m repro fleet sweep [--smoke] [--json PATH]"
    if not args or args[0] != "sweep":
        print(usage, file=sys.stderr)
        return 2
    smoke = "--smoke" in args
    rest = [a for a in args[1:] if a != "--smoke"]
    json_path: str | None = None
    i = 0
    while i < len(rest):
        if rest[i] == "--json":
            if i + 1 >= len(rest):
                print("fleet sweep: --json needs a value", file=sys.stderr)
                return 2
            json_path = rest[i + 1]
            i += 2
        else:
            print(f"fleet sweep: unexpected argument {rest[i]!r}\n{usage}",
                  file=sys.stderr)
            return 2
    if json_path is None and not smoke:
        json_path = "BENCH_fleet.json"  # smoke never writes by default

    raw = catalog.raw_pack(FLEET_PACK)
    raw = {**raw, "fleet": {**raw.get("fleet", {}), "smoke": smoke}}
    result = run_pack(raw, jobs=1)
    payload = result.payloads[result.exp_id]
    results = {"fleet_sweep": payload["fleet_sweep"],
               "cache_ablation": payload["cache_ablation"]}
    if json_path is not None:
        # The exact bytes fleet_bench(json_path=...) used to write.
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
    rows = [(f"sweep.{key}", f"{value:g}")
            for key, value in results["fleet_sweep"].items()]
    rows += [(f"cache.{key}",
              str(value) if isinstance(value, bool) else f"{value:g}")
             for key, value in results["cache_ablation"].items()]
    wrote = f"wrote {json_path}" if json_path else "nothing written"
    print(format_table(
        ("metric", "value"), rows,
        title=f"[repro fleet sweep] "
              f"{'smoke' if smoke else 'full'} profile, {wrote}"))

    failures = []
    realtime = results["fleet_sweep"]["speedup_vs_scalar"]
    if realtime < REALTIME_FLOOR:
        failures.append(f"sweep realtime factor {realtime:.1f}x below "
                        f"the {REALTIME_FLOOR:g}x floor")
    reduction = results["cache_ablation"]["crossings_reduction"]
    if reduction < CACHE_REDUCTION_FLOOR:
        failures.append(f"cache crossings reduction {reduction:.1f}x below "
                        f"the {CACHE_REDUCTION_FLOOR:g}x floor")
    if not results["cache_ablation"]["byte_identical"]:
        failures.append("channel cache changed MonEQ output bytes")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0
