"""Executing a validated scenario pack — and the engine module contract.

This module is two faces of one implementation:

* :func:`execute_scenario` is the **live** path: stand up the declared
  testbed, schedule the workload, run one MonEQ session (optionally
  under the pack's fault plan) and hand back live objects — the
  :class:`~repro.chaos.faults.FaultPlan` with its timeline, the output
  files, the collector-error deltas.  ``repro.chaos.run_scenario`` is a
  thin wrapper over this, which is what makes the chaos catalog's
  summary lines byte-identical through the pack path.
* ``run_part`` / ``render_block`` implement the exec engine's module
  contract, so a compiled pack (`repro.packs.run.compile_spec`)
  dispatches through the same content-addressed cache and worker pool
  as the paper experiments.  The payload is the JSON-serializable
  projection of a :class:`ScenarioRun`.

Fault windows in a manifest are *fractions* of the run
(``t_start_frac``), resolved against the effective duration here —
``0.4`` of a 12 s run is the same ``t_start=4.8`` rule the legacy
chaos catalog built, bit for bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.chaos.faults import FaultPlan, FaultRule
from repro.errors import PackError
from repro.exec.spec import ExperimentReport
from repro.packs.schema import (
    FaultPlanSpec,
    ScenarioSpec,
    TestbedSpec,
    WorkloadSpec,
)


@dataclass(frozen=True)
class PackRunConfig:
    """The engine-facing config of a compiled pack: the canonical
    manifest text plus the run-time overrides.  All fields enter the
    cache key, so a different seed or duration is a different result."""

    manifest: str
    seed: int
    duration_s: float
    rate: float | None = None


@dataclass
class ScenarioRun:
    """Everything one live scenario execution produced."""

    name: str
    kind: str
    seed: int
    duration_s: float
    interval_s: float
    ticks: int
    plan: FaultPlan | None
    #: Output path -> file content for every agent of the session.
    outputs: dict[str, str]
    #: COLLECTOR_ERRORS deltas over the run, (mechanism, kind) -> count.
    error_deltas: dict[tuple[str, str], int]


# -- fault plans ------------------------------------------------------------


def fault_rules(faults: FaultPlanSpec, duration_s: float,
                rate: float | None = None) -> tuple[FaultRule, ...]:
    """Resolve a pack's rule specs against a concrete run window.

    ``rate=None`` means "the pack's default_rate"; an explicit rate
    (the CLI's ``--rate``) replaces it for every rate-less rule.
    """
    effective = faults.default_rate if rate is None else rate
    return tuple(
        FaultRule(
            rule.mechanism,
            rate=effective if rule.rate is None else rule.rate,
            kind=rule.kind,
            t_start=rule.t_start_frac * duration_s,
            t_end=(math.inf if rule.t_end_frac is None
                   else rule.t_end_frac * duration_s),
        )
        for rule in faults.rules
    )


def build_plan(faults: FaultPlanSpec, seed: int, duration_s: float,
               rate: float | None = None) -> FaultPlan:
    return FaultPlan(seed=seed,
                     rules=fault_rules(faults, duration_s, rate))


# -- testbeds and workloads --------------------------------------------------


def build_workload(spec: WorkloadSpec):
    """The pack's phased workload as a live
    :class:`~repro.workloads.base.PhasedWorkload`."""
    from repro.workloads.base import Phase, PhasedWorkload

    phases = [Phase(p.name, p.duration_s, dict(p.loads))
              for p in spec.phases]
    return PhasedWorkload(spec.name, phases)


def build_testbed(testbed: TestbedSpec, seed: int,
                  workload: WorkloadSpec | None = None):
    """Stand up the declared rig; returns ``(node, backends)`` with
    ``backends`` in the testbed's canonical mechanism order.

    The workload (when declared) is scheduled on every attached device
    that carries a power board — components are device-namespaced, so
    a board simply idles through loads it does not own.
    """
    from repro import testbeds

    tb_seed = testbed.seed if testbed.seed is not None else seed
    load = build_workload(workload) if workload is not None else None

    if testbed.kind == "fleet":
        node, backends = testbeds.fleet_node(seed=tb_seed)
    elif testbed.kind == "gpu":
        from repro.core.moneq.backends import NvmlBackend
        from repro.nvml.device import KEPLER_K20, KEPLER_K40

        model = KEPLER_K40 if testbed.gpu_model == "k40" else KEPLER_K20
        node, gpu, _ = testbeds.gpu_node(seed=tb_seed, model=model)
        if testbed.power_cap_w is not None:
            gpu.set_power_limit(testbed.power_cap_w, node.clock.now)
        backends = {"nvml": NvmlBackend(gpu)}
    elif testbed.kind == "phi":
        from repro.core.moneq.backends import (
            PhiIpmbBackend,
            PhiMicrasBackend,
            PhiMicsmcBackend,
            PhiSysMgmtBackend,
        )

        rig = testbeds.phi_node(seed=tb_seed)
        node = rig.node
        backends = {
            "sysmgmt": PhiSysMgmtBackend(rig.sysmgmt),
            "micras": PhiMicrasBackend(rig.micras),
            "ipmb": PhiIpmbBackend(rig.bmc),
            "micsmc": PhiMicsmcBackend(rig.smc),
        }
    elif testbed.kind == "rapl":
        start_s = workload.start_s if workload is not None else 5.0
        node, backends = _rapl_testbed(testbed, tb_seed, load, start_s)
        load = None  # rapl_node scheduled it on the socket already
    else:  # pragma: no cover - schema rejects unknown kinds
        raise PackError(f"unknown testbed kind {testbed.kind!r}")

    if load is not None:
        t_start = workload.start_s
        for kind in node.device_kinds():
            for device in node.devices(kind):
                board = getattr(device, "board", None)
                if board is not None:
                    board.schedule(load, t_start=t_start)
    return node, backends


def _rapl_testbed(testbed: TestbedSpec, seed: int, load, start_s: float):
    from repro import testbeds
    from repro.core.moneq.backends import (
        RaplMsrBackend,
        RaplPerfBackend,
        RaplPowercapBackend,
    )
    from repro.rapl.perf_event import PerfEventRapl
    from repro.rapl.powercap import install_powercap_driver

    node, _ = testbeds.rapl_node(
        seed=seed, kernel=testbed.kernel, workload=load,
        workload_start=start_s,
    )
    package = node.devices("cpu")[0]
    install_powercap_driver(node)
    node.kernel.modprobe("intel_rapl")
    backends = {
        "rapl_msr": RaplMsrBackend(package, node=node),
        "rapl_powercap": RaplPowercapBackend(node),
        "rapl_perf": RaplPerfBackend(PerfEventRapl(node, package)),
    }
    return node, backends


def select_backends(spec: ScenarioSpec, backends: dict) -> list:
    """The session's backend list: manifest order when the pack names
    mechanisms, testbed order when it leaves the list empty."""
    if not spec.mechanisms:
        return list(backends.values())
    missing = [m for m in spec.mechanisms if m not in backends]
    if missing:  # pragma: no cover - schema validates availability
        raise PackError(
            f"pack {spec.name!r}: testbed offers no {missing} "
            f"(have {sorted(backends)})")
    return [backends[m] for m in spec.mechanisms]


# -- the live path ----------------------------------------------------------


def execute_scenario(spec: ScenarioSpec, seed: int | None = None,
                     duration_s: float | None = None,
                     rate: float | None = None,
                     plan: FaultPlan | None = None) -> ScenarioRun:
    """Run one session/chaos scenario live; returns a :class:`ScenarioRun`.

    A caller-supplied ``plan`` (the chaos byte-identity tests pass
    their own) wins over the pack's fault section; otherwise the plan
    is built from the manifest, seeded with the effective seed.
    """
    from repro.core.moneq.config import MoneqConfig
    from repro.core.moneq.session import MoneqSession
    from repro.obs.instruments import COLLECTOR_ERRORS

    if spec.kind not in ("session", "chaos"):
        raise PackError(
            f"pack {spec.name!r}: kind {spec.kind!r} is not a live "
            f"session scenario")
    seed = spec.seed if seed is None else seed
    duration_s = spec.duration_s if duration_s is None else duration_s
    if plan is None and spec.faults is not None:
        plan = build_plan(spec.faults, seed=seed, duration_s=duration_s,
                          rate=rate)

    node, backends = build_testbed(spec.testbed, seed, spec.workload)
    selected = select_backends(spec, backends)
    errors_before = COLLECTOR_ERRORS.samples()
    config = (MoneqConfig(polling_interval_s=spec.interval_s)
              if spec.interval_s is not None else None)
    session = MoneqSession(selected, node.events, config=config,
                           node_count=1, vfs=node.vfs)
    if plan is not None:
        with plan.active():
            node.events.run_until(node.clock.now + duration_s)
            result = session.finalize()
    else:
        node.events.run_until(node.clock.now + duration_s)
        result = session.finalize()

    error_deltas: dict[tuple[str, str], int] = {}
    for key, value in COLLECTOR_ERRORS.samples().items():
        delta = value - errors_before.get(key, 0.0)
        if delta:
            error_deltas[(key[0], key[1])] = int(delta)
    outputs = {path: node.vfs.read_text(path)
               for path in result.output_paths}
    return ScenarioRun(
        name=spec.name, kind=spec.kind, seed=seed, duration_s=duration_s,
        interval_s=session.interval_s, ticks=result.overhead.ticks,
        plan=plan, outputs=outputs, error_deltas=error_deltas,
    )


# -- the engine module contract ---------------------------------------------


def scenario_payload(spec: ScenarioSpec, run: ScenarioRun) -> dict:
    """JSON projection of a live run — what the engine caches."""
    payload: dict = {
        "kind": spec.kind,
        "pack": spec.name,
        "summary": spec.summary,
        "seed": run.seed,
        "duration_s": run.duration_s,
        "interval_s": run.interval_s,
        "ticks": run.ticks,
        "outputs": [[path, run.outputs[path]]
                    for path in sorted(run.outputs)],
        "error_deltas": [[mechanism, kind, count]
                         for (mechanism, kind), count
                         in sorted(run.error_deltas.items())],
    }
    if run.plan is not None:
        stats = run.plan.stats
        payload["stats"] = {
            "faults": stats.faults,
            "recovered": stats.recovered,
            "dark": stats.dark,
            "stale": stats.stale,
            "retries": stats.retries,
            "backoff_s": stats.backoff_s,
            "breaker_opens": stats.breaker_opens,
        }
        payload["timeline"] = run.plan.timeline_lines()
    return payload


def run_part(part: str, config: PackRunConfig) -> dict:
    """Engine contract: execute the compiled pack's single part."""
    from repro.packs.manifest import scenario_from_mapping

    spec = scenario_from_mapping(json.loads(config.manifest))
    if spec.kind == "fleet":
        from repro.fleet import fleet_bench

        results = fleet_bench(json_path=None, smoke=spec.fleet.smoke)
        return {"kind": "fleet", "pack": spec.name,
                "summary": spec.summary, **results}
    run = execute_scenario(spec, seed=config.seed,
                           duration_s=config.duration_s, rate=config.rate)
    return scenario_payload(spec, run)


def render_block(parts: dict[str, dict]) -> ExperimentReport:
    """Engine contract: one report block from the single-part payload."""
    payload = parts["all"]
    name = payload["pack"]
    if payload["kind"] == "fleet":
        rows = [(f"sweep.{key}", "—", f"{value:g}")
                for key, value in payload["fleet_sweep"].items()]
        rows += [(f"cache.{key}", "—",
                  str(value) if isinstance(value, bool) else f"{value:g}")
                 for key, value in payload["cache_ablation"].items()]
    else:
        errors = sum(count for _, _, count in payload["error_deltas"])
        rows = [
            ("polling interval", "—", f"{payload['interval_s']:.3f} s"),
            ("collection ticks", "—", str(payload["ticks"])),
            ("output files", "—", str(len(payload["outputs"]))),
            ("collector errors", "—", str(errors)),
        ]
        stats = payload.get("stats")
        if stats is not None:
            rows += [
                ("faults injected", "—", str(stats["faults"])),
                ("recovered", "—", str(stats["recovered"])),
                ("dark reads", "—", str(stats["dark"])),
                ("stale reads", "—", str(stats["stale"])),
                ("retries", "—", str(stats["retries"])),
                ("backoff", "—", f"{stats['backoff_s']:.6f} s"),
                ("breaker opens", "—", str(stats["breaker_opens"])),
            ]
    return ExperimentReport(
        exp_id=f"pack:{name}",
        title=payload["summary"],
        bench=f"repro pack run {name}",
        rows=rows,
        notes=f"seed {payload['seed']}, kind {payload['kind']}"
              if payload["kind"] != "fleet" else "wall-clock timed, uncached",
    )
