"""``repro.packs`` — declarative scenario packs over the exec engine.

One manifest (TOML or JSON) declares a whole run — testbed,
mechanisms, phased workload, fault plan, duration, seeds — and the
pack runner compiles it onto the experiment engine: content-addressed
caching, the forked worker pool, byte-stable report blocks.  The
chaos catalog and the fleet sweep are pack consumers too: chaos
scenarios *are* ``kind = "chaos"`` manifests, and ``repro fleet
sweep`` runs a fleet-typed pack.

Layering (each layer imports only downward):

``schema``    manifest shape: dataclasses + the strict validator
``manifest``  TOML/JSON decoding into validated scenarios
``catalog``   the ``packs/`` directory; chaos-catalog derivation
``runtime``   live execution + the engine's run_part/render_block
``run``       compile onto the engine; the one-call runner
``shims``     the legacy ``chaos``/``fleet`` CLI surfaces, rerouted
"""

from repro.packs.catalog import (
    PACKS_DIR_ENV,
    all_packs,
    load_pack,
    pack_path,
    pack_paths,
    packs_dir,
)
from repro.packs.manifest import (
    canonical_manifest,
    load_manifest,
    load_scenario,
    scenario_from_mapping,
)
from repro.packs.run import (
    PACK_SOURCES,
    SMOKE_PACKS,
    PackRunResult,
    compile_spec,
    run_pack,
)
from repro.packs.runtime import (
    PackRunConfig,
    ScenarioRun,
    execute_scenario,
)
from repro.packs.schema import (
    FaultPlanSpec,
    FaultRuleSpec,
    FleetSpec,
    PhaseSpec,
    ScenarioSpec,
    TestbedSpec,
    WorkloadSpec,
    parse_scenario,
)

__all__ = [
    "PACKS_DIR_ENV",
    "PACK_SOURCES",
    "SMOKE_PACKS",
    "FaultPlanSpec",
    "FaultRuleSpec",
    "FleetSpec",
    "PackRunConfig",
    "PackRunResult",
    "PhaseSpec",
    "ScenarioRun",
    "ScenarioSpec",
    "TestbedSpec",
    "WorkloadSpec",
    "all_packs",
    "canonical_manifest",
    "compile_spec",
    "execute_scenario",
    "load_manifest",
    "load_pack",
    "load_scenario",
    "pack_path",
    "pack_paths",
    "packs_dir",
    "parse_scenario",
    "run_pack",
    "scenario_from_mapping",
]
