"""Power and thermal models over load boards.

:class:`ComponentPowerModel` maps utilization to watts with the standard
affine model (idle floor + per-component dynamic range).  It exposes
power as live signals so sensors, counters and power caps all observe
one consistent truth.

:class:`ThermalModel` is a first-order RC thermal node driven by the
power signal — sufficient for the steady temperature climb in the
paper's Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.devices.load import LoadBoard
from repro.sim.integrate import CumulativeIntegral
from repro.sim.signals import Signal


class ComponentPowerModel:
    """Affine utilization-to-watts model for one device.

    Parameters
    ----------
    board:
        The device's load board.
    idle_w:
        Power drawn with every component idle.
    dynamic_w:
        Mapping component -> additional watts at utilization 1.0.
    """

    def __init__(self, board: LoadBoard, idle_w: float, dynamic_w: dict[str, float]):
        if idle_w < 0.0:
            raise ConfigError(f"idle power must be non-negative, got {idle_w}")
        for component, watts in dynamic_w.items():
            if watts < 0.0:
                raise ConfigError(f"dynamic watts for {component} must be >= 0, got {watts}")
        self.board = board
        self.idle_w = float(idle_w)
        self.dynamic_w = dict(dynamic_w)

    @property
    def peak_w(self) -> float:
        """Power with every component at utilization 1.0."""
        return self.idle_w + sum(self.dynamic_w.values())

    def power(self, t: np.ndarray | float) -> np.ndarray:
        """True device power at time(s) ``t``."""
        times = np.asarray(t, dtype=np.float64)
        total = np.full_like(times, self.idle_w)
        for component, watts in self.dynamic_w.items():
            total = total + watts * self.board.utilization(component, times)
        return total

    def component_power(self, component: str, t: np.ndarray | float,
                        idle_share: float = 0.0) -> np.ndarray:
        """Power attributable to one component: an optional share of the
        idle floor plus its dynamic contribution."""
        times = np.asarray(t, dtype=np.float64)
        watts = self.dynamic_w.get(component, 0.0)
        return idle_share * self.idle_w + watts * self.board.utilization(component, times)

    def signal(self) -> "PowerSignal":
        """Live signal view of total power."""
        return PowerSignal(self, None)

    def component_signal(self, component: str, idle_share: float = 0.0) -> "PowerSignal":
        """Live signal view of one component's power."""
        return PowerSignal(self, component, idle_share)


class PowerSignal:
    """Signal adapter over a :class:`ComponentPowerModel`."""

    def __init__(self, model: ComponentPowerModel, component: str | None,
                 idle_share: float = 0.0):
        self.model = model
        self.component = component
        self.idle_share = idle_share

    def value(self, t: np.ndarray | float) -> np.ndarray:
        if self.component is None:
            return self.model.power(t)
        return self.model.component_power(self.component, t, self.idle_share)


class LimitedSignal:
    """A signal clamped by a *time-varying* cap.

    Models RAPL power capping: writes to the power-limit MSR take effect
    from the write time forward; earlier history is unaffected.
    """

    def __init__(self, inner: Signal, default_limit: float = np.inf):
        self.inner = inner
        self._times: list[float] = [0.0]
        self._limits: list[float] = [float(default_limit)]

    def set_limit(self, t: float, limit: float) -> None:
        """Apply ``limit`` from time ``t`` forward."""
        if limit <= 0.0:
            raise ConfigError(f"power limit must be positive, got {limit}")
        if t < self._times[-1]:
            raise ConfigError(
                f"limit changes must be chronological: {t} < {self._times[-1]}"
            )
        self._times.append(float(t))
        self._limits.append(float(limit))

    def current_limit(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return self._limits[max(idx, 0)]

    def value(self, t: np.ndarray | float) -> np.ndarray:
        times = np.asarray(t, dtype=np.float64)
        idx = np.clip(np.searchsorted(self._times, times, side="right") - 1, 0, None)
        limits = np.asarray(self._limits, dtype=np.float64)[idx]
        return np.minimum(self.inner.value(times), limits)


class ThermalModel:
    """First-order RC thermal node driven by a power signal.

    dT/dt = (P(t) - (T - T_ambient)/R) / C, solved on a cached grid like
    the energy integrals.  ``temperature(t)`` is exact for the cached
    grid resolution and deterministic.
    """

    def __init__(self, power: Signal, ambient_c: float = 25.0,
                 r_c_per_w: float = 0.35, c_j_per_c: float = 180.0,
                 dt: float = 0.05):
        if r_c_per_w <= 0.0 or c_j_per_c <= 0.0:
            raise ConfigError("thermal R and C must be positive")
        self.power = power
        self.ambient_c = float(ambient_c)
        self.r = float(r_c_per_w)
        self.c = float(c_j_per_c)
        self.dt = float(dt)
        self._grid_n = 0
        self._times = np.zeros(1)
        self._temps = np.array([ambient_c + self._steady_delta(0.0)])

    def _steady_delta(self, t: float) -> float:
        """Steady-state rise above ambient for the power at time t —
        the power-on initial condition."""
        return float(self.power.value(np.asarray(0.0))) * self.r if t == 0.0 else 0.0

    def _extend(self, t_end: float) -> None:
        target = max(t_end * 1.1, self._times[-1] + 16 * self.dt)
        n_new = int(np.ceil((target - self._times[-1]) / self.dt))
        # Index-based grid points (dt * k), like CumulativeIntegral: the
        # cached temperature history is bit-identical regardless of how
        # reads were chunked (scalar ticks vs one block read).
        new_times = self.dt * np.arange(
            self._grid_n + 1, self._grid_n + n_new + 1
        ).astype(np.float64)
        powers = self.power.value(new_times)
        temps = np.empty(n_new)
        temp = self._temps[-1]
        # Exact exponential step for piecewise-constant power.
        decay = np.exp(-self.dt / (self.r * self.c))
        for i in range(n_new):
            steady = self.ambient_c + powers[i] * self.r
            temp = steady + (temp - steady) * decay
            temps[i] = temp
        self._times = np.concatenate((self._times, new_times))
        self._temps = np.concatenate((self._temps, temps))
        self._grid_n += n_new

    def temperature(self, t: np.ndarray | float) -> np.ndarray:
        """Temperature in Celsius at time(s) ``t``."""
        times = np.asarray(t, dtype=np.float64)
        t_max = float(np.max(times, initial=0.0))
        if t_max > self._times[-1]:
            self._extend(t_max)
        return np.interp(times, self._times, self._temps)

    def signal(self) -> "TemperatureSignal":
        return TemperatureSignal(self)


class TemperatureSignal:
    """Signal adapter over a :class:`ThermalModel`."""

    def __init__(self, model: ThermalModel):
        self.model = model

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return self.model.temperature(t)


class BoardTrackingIntegral:
    """Cumulative integral that invalidates when the load board mutates.

    Energy counters wrap this so scheduling a new workload after a
    counter was already read does not leave stale cached energy history.
    """

    def __init__(self, signal: Signal, board: LoadBoard, dt: float = 1e-3):
        self.signal = signal
        self.board = board
        self.dt = dt
        self._version = board.version
        self._integral = CumulativeIntegral(signal, dt=dt)

    def _fresh(self) -> CumulativeIntegral:
        if self.board.version != self._version:
            self._integral = CumulativeIntegral(self.signal, dt=self.dt)
            self._version = self.board.version
        return self._integral

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return self._fresh().value(t)

    def between(self, t0: float, t1: float) -> float:
        return self._fresh().between(t0, t1)
