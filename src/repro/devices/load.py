"""Load boards: what is running on a device right now.

A :class:`LoadBoard` holds the workloads scheduled onto one device and
exposes summed per-component utilization, clipped to [0, 1].  Collection
*mechanisms* can also inject load — the Xeon Phi's in-band SysMgmt API
runs code on the card per query, which is how the paper's Figure 7 power
gap arises — so boards accept both workloads and standing "parasitic"
utilization contributions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.signals import Signal
from repro.workloads.base import ScheduledWorkload, Workload


class LoadBoard:
    """Aggregated utilization of everything scheduled on a device."""

    def __init__(self):
        self._scheduled: list[ScheduledWorkload] = []
        self._parasitic: list[tuple[str, Signal]] = []
        #: Bumped on every mutation; energy-counter caches key on it.
        self.version = 0

    @property
    def scheduled(self) -> list[ScheduledWorkload]:
        return list(self._scheduled)

    def schedule(self, workload: Workload, t_start: float = 0.0) -> ScheduledWorkload:
        """Place a workload on the device starting at ``t_start``."""
        placed = workload.shifted(t_start)
        self._scheduled.append(placed)
        self.version += 1
        return placed

    def add_parasitic(self, component: str, signal: Signal) -> None:
        """Add a standing utilization contribution not owned by any
        workload (e.g. a collection mechanism's on-device footprint)."""
        self._parasitic.append((component, signal))
        self.version += 1

    def utilization(self, component: str, t: np.ndarray | float) -> np.ndarray:
        """Summed, clipped utilization of ``component`` at time(s) ``t``."""
        times = np.asarray(t, dtype=np.float64)
        total = np.zeros_like(times)
        for placed in self._scheduled:
            total = total + placed.utilization(component, times)
        for comp, signal in self._parasitic:
            if comp == component:
                total = total + np.clip(signal.value(times), 0.0, 1.0)
        return np.clip(total, 0.0, 1.0)

    def signal(self, component: str) -> "UtilizationSignal":
        """A live :class:`Signal` view of one component's utilization."""
        return UtilizationSignal(self, component)

    def busy_until(self) -> float:
        """End time of the last scheduled workload (0 when empty)."""
        return max((p.t_end for p in self._scheduled), default=0.0)


class UtilizationSignal:
    """Signal adapter over a load board component.

    The adapter is *live*: workloads scheduled after its creation are
    reflected in later evaluations — but note that cached integrals
    (energy counters) must therefore be constructed only after the run's
    schedule is final, which device constructors arrange.
    """

    def __init__(self, board: LoadBoard, component: str):
        if not component:
            raise WorkloadError("component name must be non-empty")
        self.board = board
        self.component = component

    def value(self, t: np.ndarray | float) -> np.ndarray:
        return self.board.utilization(self.component, t)
