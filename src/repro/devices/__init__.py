"""Shared device-model machinery.

Every simulated device (CPU package, GPU board, Phi card, BG/Q node
card) composes the same three pieces:

* a :class:`LoadBoard` — the set of workloads currently scheduled on the
  device, summed into per-component utilization;
* a :class:`ComponentPowerModel` — idle + per-component dynamic watts,
  turning utilization into true power signals;
* sensors from :mod:`repro.sim.sensor` sampling those signals through
  each vendor's particular window (update period, noise, quantization).
"""

from repro.devices.load import LoadBoard, UtilizationSignal
from repro.devices.power import ComponentPowerModel, LimitedSignal, ThermalModel

__all__ = [
    "LoadBoard",
    "UtilizationSignal",
    "ComponentPowerModel",
    "LimitedSignal",
    "ThermalModel",
]
