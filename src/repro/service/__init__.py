"""``repro.service`` — the live monitoring query service.

The paper's end state is environmental data operators actually *query*
(Mira's EnvDB feeds tools, not people reading flat files).  This
package puts the versioned API behind an HTTP face: a pure-stdlib WSGI
app fronting one :class:`~repro.store.ShardedStore` and the obs
registry, in the shape of CEEMS's resource-manager-agnostic API server.

* :mod:`repro.service.app` — the WSGI :class:`ServiceApp`, the
  in-process :class:`ServiceClient`, and ``serve()``;
* :mod:`repro.service.routes` — endpoint handlers: planned
  ``/v2/query/{range,prefix,latest,aggregate}``, cursor-paged
  ``/v2/tail``, ``/ready`` / ``/health`` / ``/metrics``, and the
  credentialed ``/v2/mech/<name>/read``;
* :mod:`repro.service.auth` — tenants bound to the host layer's POSIX
  :class:`~repro.host.permissions.Credentials` (one permission model
  end to end: a root-gated mechanism denies an unprivileged tenant at
  the chardev, rendered as a structured 403);
* :mod:`repro.service.errors` — the JSON error envelope
  (status/title/detail/origin);
* :mod:`repro.service.streaming` — the chunked NDJSON tail with
  shard-dark gap markers (chaos-aware degradation);
* :mod:`repro.service.loadgen` — the 64-shard load generator behind
  ``BENCH_service.json``.

See ``docs/service.md`` for the endpoint reference.
"""

from __future__ import annotations

from repro.service.app import (
    ClientResponse,
    ServiceApp,
    ServiceClient,
    serve,
    service_for_fleet,
    service_for_machine,
)
from repro.service.auth import Tenant, TenantRegistry, default_tenants
from repro.service.errors import (
    BadRequest,
    Forbidden,
    MethodNotAllowed,
    NotFound,
    ServiceError,
    Unauthorized,
    Unavailable,
)
from repro.service.loadgen import bench_service, build_rig, write_bench
from repro.service.streaming import STORE_CHANNEL, dark_shards, tail_stream

__all__ = [
    "BadRequest",
    "ClientResponse",
    "Forbidden",
    "MethodNotAllowed",
    "NotFound",
    "STORE_CHANNEL",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "Tenant",
    "TenantRegistry",
    "Unauthorized",
    "Unavailable",
    "bench_service",
    "build_rig",
    "dark_shards",
    "default_tenants",
    "serve",
    "service_for_fleet",
    "service_for_machine",
    "tail_stream",
    "write_bench",
]
