"""The service load generator and its committed benchmark.

``bench_service`` stands up the ROADMAP's target rig — a 64-rack BG/Q
machine whose envdb shards across 64 stores — puts a
:class:`~repro.service.app.ServiceApp` in front of it, and drives a
sustained mixed query load (range / prefix / latest / aggregate / tail
pages) through the in-process client: the full dispatch, auth,
planning, merge and JSON path with no socket noise.  The committed
figure is sustained queries/second; ``speedup_vs_scalar`` is the
aggregate cache's cold-build vs warm-hit ratio measured through the
whole HTTP stack — the store-level cached-aggregate speedup as a
client actually sees it, with dispatch and JSON riding along.

``python -m repro service bench`` writes ``BENCH_service.json``;
the reduced profile backs the ``service`` entry in
``repro bench perf --smoke``.
"""

from __future__ import annotations

import json
import os
import time

from repro.bgq.machine import BgqMachine
from repro.service.app import ServiceApp, ServiceClient, service_for_machine
from repro.sim.rng import RngRegistry

#: The poll interval the rig sweeps at (the paper's ~4 minute default).
SWEEP_INTERVAL_S = 240.0


def build_rig(racks: int = 64, shards: int = 64, sweeps: int = 2,
              seed: int = 11) -> tuple[BgqMachine, ServiceApp, ServiceClient]:
    """A populated machine + service + client, ``sweeps`` sweeps in."""
    machine = BgqMachine(racks=racks, rng=RngRegistry(seed),
                         poll_interval_s=SWEEP_INTERVAL_S,
                         envdb_shards=shards)
    machine.advance_to(SWEEP_INTERVAL_S * sweeps + 1.0)
    app = service_for_machine(machine, pump_step_s=SWEEP_INTERVAL_S)
    return machine, app, ServiceClient(app)


def _drive_mixed(client: ServiceClient, racks: int, requests: int,
                 t1: float) -> dict:
    """Issue ``requests`` mixed queries; returns accounting."""
    kinds = ("range", "latest", "prefix", "aggregate", "tail")
    rows = 0
    cursor = 0
    started = time.perf_counter()
    for i in range(requests):
        kind = kinds[i % len(kinds)]
        prefix = f"R{(i * 7) % racks:02d}"
        if kind == "range":
            response = client.get("/v2/query/range", {
                "table": "bpm", "t0": 0.0, "t1": t1, "prefix": prefix})
        elif kind == "latest":
            response = client.get("/v2/query/latest", {
                "table": "bpm", "prefix": prefix})
        elif kind == "prefix":
            response = client.get("/v2/query/prefix", {
                "table": "fan", "prefix": prefix})
        elif kind == "aggregate":
            response = client.get("/v2/query/aggregate", {
                "table": "bpm", "field": "input_power_w", "t0": 0.0,
                "t1": t1, "window": SWEEP_INTERVAL_S})
        else:
            response = client.get("/v2/tail", {
                "table": "bpm", "cursor": cursor, "limit": 512})
            cursor = response.json()["cursor"]
        if response.status != 200:
            raise AssertionError(
                f"load generator got {response.status} on {kind}: "
                f"{response.body[:200]!r}"
            )
        payload = response.json()
        rows += payload.get("count", len(payload.get("rows", ())))
    wall = time.perf_counter() - started
    return {"wall_s": wall, "qps": requests / wall, "rows": rows}


def _aggregate_cache_ratio(client: ServiceClient, store, t1: float,
                           probes: int = 4, warm_reps: int = 10) -> float:
    """Cold-build vs warm-hit time per aggregate query, through HTTP.

    The probe pins one location: the response stays a handful of rows
    (so serialization doesn't drown the signal), while a cold query
    still builds the **whole shard's** per-(location, window) cache.
    Each previously-unseen ``window_s`` forces that rebuild; repeats of
    the same query are pure cache hits.  Averaged over ``probes``
    rebuilds because single cold samples are noise-dominated.
    """
    location = sorted(store.latest("bpm"))[0]
    cold = 0.0
    warm = 0.0
    for probe in range(probes):
        params = {"table": "bpm", "field": "input_power_w", "t0": 0.0,
                  "t1": t1, "window": 60.0 + probe, "prefix": location}
        t = time.perf_counter()
        assert client.get("/v2/query/aggregate", params).status == 200
        cold += time.perf_counter() - t
        t = time.perf_counter()
        for _ in range(warm_reps):
            client.get("/v2/query/aggregate", params)
        warm += (time.perf_counter() - t) / warm_reps
    return cold / warm if warm > 0 else 1.0


def bench_service(racks: int = 64, shards: int = 64, requests: int = 400,
                  sweeps: int = 16, seed: int = 11) -> dict:
    """The committed service benchmark (reduced sizes for smoke)."""
    started = time.perf_counter()
    machine, app, client = build_rig(racks=racks, shards=shards,
                                     sweeps=sweeps, seed=seed)
    t1 = machine.clock.now
    assert client.get("/ready").status == 200
    mixed = _drive_mixed(client, racks, requests, t1)
    cache_ratio = _aggregate_cache_ratio(client, machine.envdb.store, t1)

    # One bounded streaming tail, pumping a fresh sweep mid-stream, so
    # the committed bench exercises the chunked path too.
    stream = client.get("/v2/stream/tail", {
        "table": "bpm", "cursor": 0, "batches": 3, "page": 4096})
    streamed = sum(1 for line in stream.lines() if "marker" not in line)

    return {
        "wall_s": time.perf_counter() - started,
        "speedup_vs_scalar": cache_ratio,
        "sustained_qps": mixed["qps"],
        "requests": requests,
        "query_wall_s": mixed["wall_s"],
        "rows_returned": mixed["rows"],
        "streamed_rows": streamed,
        "racks": racks,
        "shards": shards,
        "store_records": machine.envdb.store.records_ingested,
        "cpus": os.cpu_count(),
    }


def write_bench(json_path: str = "BENCH_service.json", **kwargs) -> dict:
    """Run the full-size bench and commit its figures."""
    result = bench_service(**kwargs)
    trajectory = {
        "service": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in result.items()
        }
    }
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result
