"""The service's structured error envelope.

Every failure a client can see is a :class:`ServiceError` rendered as
one JSON object (the nistoar ``jsonerr`` idiom): an HTTP status, a
short title, a human-readable detail, and the *origin* — the layer the
denial or failure actually came from.  A permission denial surfaces
with ``origin="repro.host.permissions"`` because that is literally the
module that raised it: the service never re-implements the POSIX
check, it propagates the chardev gate's own error.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """A request that could not be served, with its HTTP rendering."""

    status = 500
    title = "Internal Server Error"
    #: The layer the failure originated in (module path); subclasses
    #: with a fixed origin set it as a class attribute.
    origin = "repro.service"

    def __init__(self, detail: str = "", origin: str | None = None):
        super().__init__(detail or self.title)
        self.detail = detail or self.title
        if origin is not None:
            self.origin = origin

    def envelope(self) -> dict:
        """The one JSON shape every error response carries."""
        return {
            "error": {
                "status": self.status,
                "title": self.title,
                "detail": self.detail,
                "origin": self.origin,
            }
        }


class BadRequest(ServiceError):
    """Malformed query: unknown table, bad parameter, inverted window."""

    status = 400
    title = "Bad Request"


class Unauthorized(ServiceError):
    """The request named a tenant the registry does not know."""

    status = 401
    title = "Unauthorized"
    origin = "repro.service.auth"


class Forbidden(ServiceError):
    """The tenant's credentials failed a POSIX permission gate.

    Raised by the app when :class:`~repro.errors.AccessDeniedError`
    propagates out of a mechanism read — the origin is the host
    permission layer, not the service.
    """

    status = 403
    title = "Forbidden"
    origin = "repro.host.permissions"


class NotFound(ServiceError):
    """No such endpoint, mechanism, or resource."""

    status = 404
    title = "Not Found"


class MethodNotAllowed(ServiceError):
    """The endpoint exists but not for this HTTP method (GET only)."""

    status = 405
    title = "Method Not Allowed"


class Unavailable(ServiceError):
    """A dependency is dark: shards under an active fault plan, or a
    service booted without the resource the endpoint needs."""

    status = 503
    title = "Service Unavailable"
