"""Endpoint handlers and route resolution.

Every route is resolved to a bounded *endpoint label* (the pattern,
not the concrete path) so ``repro_service_requests_total`` stays at
fixed label cardinality no matter what clients ask for.  Handlers
take ``(service, request)`` and return a JSON-able payload, an
optional ``(payload, status)`` pair, plain text, or a line iterator
(streamed as NDJSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import repro.obs as obs
from repro.mech.registry import mechanisms
from repro.service.auth import Tenant
from repro.service.errors import (
    BadRequest,
    MethodNotAllowed,
    NotFound,
    Unavailable,
)
from repro.service.streaming import (
    dark_shards,
    reading_json,
    tail_stream,
)

#: Raw query kinds the /v2/query endpoint serves (tail has its own
#: cursor-shaped endpoints).
QUERY_ENDPOINT_KINDS = ("range", "prefix", "latest", "aggregate")

_MISSING = object()


@dataclass
class Request:
    """One parsed request: method, path, query params, tenant."""

    method: str
    path: str
    params: dict[str, list[str]] = field(default_factory=dict)
    tenant: Tenant | None = None

    def param(self, name: str, default=_MISSING) -> str:
        values = self.params.get(name)
        if not values:
            if default is _MISSING:
                raise BadRequest(f"missing required parameter {name!r}")
            return default
        return values[-1]

    def float_param(self, name: str, default=_MISSING) -> float:
        raw = self.param(name, default)
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise BadRequest(
                f"parameter {name!r} must be a number, got {raw!r}"
            ) from None

    def int_param(self, name: str, default=_MISSING) -> int:
        raw = self.param(name, default)
        try:
            return int(raw)
        except (TypeError, ValueError):
            raise BadRequest(
                f"parameter {name!r} must be an integer, got {raw!r}"
            ) from None


# -- handlers ----------------------------------------------------------------


def index(svc, req: Request):
    from repro.api import API_VERSION

    return {
        "service": "repro.service",
        "api_version": API_VERSION,
        "endpoints": sorted(label for _, label in _ROUTES),
        "tables": list(svc.store.table_names),
        "tenant": req.tenant.name,
    }


def ready(svc, req: Request):
    """The nistoar-style readiness probe: cheap boolean checks, 503
    until every dependency is standing."""
    checks = {
        "store": svc.store is not None,
        "tables": bool(svc.store.table_names),
        "tenants": bool(svc.tenants.names()),
    }
    ok = all(checks.values())
    return {"ready": ok, "checks": checks}, (200 if ok else 503)


def health(svc, req: Request):
    """Liveness + degradation detail (dark shards make it ``degraded``,
    not dead — the stream keeps serving with gap markers)."""
    dark = sorted(dark_shards(svc.store, svc.now()))
    status = "degraded" if dark else "ok"
    return {
        "status": status,
        "store": {
            "shards": svc.store.n_shards,
            "records": svc.store.records_ingested,
            "dropped": svc.store.dropped_records,
            "batches": svc.store.batches_flushed,
            "dark_shards": dark,
        },
        "mechanisms": {
            "registered": len(mechanisms()),
            "attached": sorted(svc.backends),
        },
    }


def metrics(svc, req: Request):
    """The Prometheus scrape: the whole obs registry, text exposition."""
    return obs.dump()


def tables(svc, req: Request):
    return {"tables": list(svc.store.table_names)}


def query(svc, req: Request, kind: str):
    """One planned query: the response carries the executed plan."""
    if kind not in QUERY_ENDPOINT_KINDS:
        raise NotFound(
            f"no query kind {kind!r}; have {list(QUERY_ENDPOINT_KINDS)}"
        )
    table = req.param("table")
    prefix = req.param("prefix", "")
    if kind == "aggregate" and svc.fleet is not None:
        return _federated_aggregate(svc, req, table, prefix)
    plan = svc.store.plan(kind, table, prefix)
    if kind == "aggregate":
        dark = dark_shards(svc.store, svc.now())
        hit = sorted(dark.intersection(plan.shards))
        if hit:
            raise Unavailable(
                f"aggregate over table {table!r} needs shards {hit} which "
                f"are dark under the active fault plan",
                origin="repro.chaos",
            )
        rows = [
            {
                "location": a.location,
                "field": a.field,
                "window_start": a.window_start,
                "window_s": a.window_s,
                "count": a.count,
                "min": a.minimum,
                "mean": a.mean,
                "max": a.maximum,
            }
            for a in svc.store.aggregate(
                table, req.param("field"), req.float_param("t0"),
                req.float_param("t1"), req.float_param("window"), prefix,
            )
        ]
    elif kind == "range":
        rows = [reading_json(r) for r in svc.store.range(
            table, req.float_param("t0"), req.float_param("t1"), prefix)]
    elif kind == "prefix":
        if not prefix:
            raise BadRequest("prefix queries need a non-empty 'prefix'")
        rows = [reading_json(r) for r in svc.store.prefix(table, prefix)]
    else:  # latest
        rows = [reading_json(r) for _, r in
                sorted(svc.store.latest(table, prefix).items())]
    return {
        "kind": kind,
        "table": table,
        "plan": {
            "shards": list(plan.shards),
            "fan_out": plan.fan_out,
            "uses_cache": plan.uses_cache,
        },
        "count": len(rows),
        "rows": rows,
    }


def _federated_aggregate(svc, req: Request, table: str, prefix: str):
    """Fleet-scale aggregate: scatter to every routed site's cached
    partials, merge centrally.  ``prefix`` follows the federation's
    ``site/location`` convention (empty fans out fleet-wide);
    ``rollup=1`` folds every partial into one fleet-wide window
    series at location ``"fleet"``."""
    rollup = req.param("rollup", "0").lower() in ("1", "true", "yes")
    fplan = svc.fleet.aggregate_plan(table, prefix, rollup=rollup)
    now = svc.now()
    for site, site_plan in fplan.per_site.items():
        dark = dark_shards(svc.fleet.sites[site], now)
        hit = sorted(dark.intersection(site_plan.shards))
        if hit:
            raise Unavailable(
                f"aggregate over table {table!r} needs site {site!r} "
                f"shards {hit} which are dark under the active fault plan",
                origin="repro.chaos",
            )
    rows = [
        {
            "location": a.location,
            "field": a.field,
            "window_start": a.window_start,
            "window_s": a.window_s,
            "count": a.count,
            "min": a.minimum,
            "mean": a.mean,
            "max": a.maximum,
        }
        for a in svc.fleet.aggregate(
            table, req.param("field"), req.float_param("t0"),
            req.float_param("t1"), req.float_param("window"), prefix,
            rollup=rollup,
        )
    ]
    return {
        "kind": "aggregate",
        "table": table,
        "plan": {
            "federated": True,
            "sites": sorted(fplan.per_site),
            "fan_out": fplan.fan_out,
            "rollup": rollup,
            "uses_cache": all(p.uses_cache
                              for p in fplan.per_site.values()),
        },
        "count": len(rows),
        "rows": rows,
    }


def tail(svc, req: Request):
    """One tail page: fresh readings past a cursor, plus the resume
    cursor (the paged, non-streaming face of the tail)."""
    table = req.param("table")
    batch = svc.store.tail(
        table,
        cursor=req.int_param("cursor", 0),
        location_prefix=req.param("prefix", ""),
        limit=req.int_param("limit", 256),
    )
    return {
        "table": table,
        "cursor": batch.cursor,
        "count": len(batch.readings),
        "rows": [reading_json(r) for r in batch.readings],
    }


def stream_tail(svc, req: Request):
    """The chunked NDJSON stream (see :mod:`repro.service.streaming`)."""
    table = svc.store._check_table(req.param("table"))
    cursor = req.param("cursor", "")
    return tail_stream(
        svc.store, table,
        cursor=None if cursor in ("", "now") else int(cursor),
        location_prefix=req.param("prefix", ""),
        page=req.int_param("page", 256),
        batches=req.int_param("batches", 10),
        now=svc.now,
        pump=svc.pump,
    )


def mech_list(svc, req: Request):
    """The mechanism registry, with live-attachment state."""
    rows = []
    for name, spec in mechanisms().items():
        rows.append({
            "mechanism": name,
            "platform": spec.platform,
            "channel": spec.channel.name,
            "permission": spec.channel.permission,
            "privileged": spec.channel.requires_privilege,
            "min_interval_s": spec.min_interval_s,
            "fields": list(spec.fields),
            "attached": name in svc.backends,
        })
    return {"count": len(rows), "mechanisms": rows}


def mech_read(svc, req: Request, name: str):
    """One credentialed read: the tenant's POSIX identity crosses the
    mechanism's access channel, so a root-gated path denies exactly
    where the real chardev would (rendered as the 403 envelope)."""
    backend = svc.backends.get(name)
    if backend is None:
        known = name in mechanisms()
        raise NotFound(
            f"mechanism {name!r} is registered but not attached to this "
            f"service" if known else f"no mechanism {name!r}"
        )
    t = req.float_param("t", svc.now())
    values = backend.read_at(t, creds=req.tenant.credentials)
    return {
        "mechanism": name,
        "label": backend.label,
        "t": t,
        "tenant": req.tenant.name,
        "values": values,
    }


# -- resolution ---------------------------------------------------------------

#: (matcher, endpoint label).  Matchers take the split path and return
#: a zero-arg-ready (handler, extra args) pair or None.
_ROUTES = []


def _route(label):
    def register(matcher):
        _ROUTES.append((matcher, label))
        return matcher
    return register


@_route("/")
def _m_index(parts):
    return (index, ()) if parts == [] else None


@_route("/ready")
def _m_ready(parts):
    return (ready, ()) if parts == ["ready"] else None


@_route("/health")
def _m_health(parts):
    return (health, ()) if parts == ["health"] else None


@_route("/metrics")
def _m_metrics(parts):
    return (metrics, ()) if parts == ["metrics"] else None


@_route("/v2/tables")
def _m_tables(parts):
    return (tables, ()) if parts == ["v2", "tables"] else None


@_route("/v2/query/<kind>")
def _m_query(parts):
    if len(parts) == 3 and parts[:2] == ["v2", "query"]:
        return (query, (parts[2],))
    return None


@_route("/v2/tail")
def _m_tail(parts):
    return (tail, ()) if parts == ["v2", "tail"] else None


@_route("/v2/stream/tail")
def _m_stream(parts):
    return (stream_tail, ()) if parts == ["v2", "stream", "tail"] else None


@_route("/v2/mech")
def _m_mech(parts):
    return (mech_list, ()) if parts == ["v2", "mech"] else None


@_route("/v2/mech/<name>/read")
def _m_mech_read(parts):
    if len(parts) == 4 and parts[0] == "v2" and parts[1] == "mech" \
            and parts[3] == "read":
        return (mech_read, (parts[2],))
    return None


def resolve(req: Request):
    """(endpoint label, bound handler) for one request; 404/405 here."""
    parts = [p for p in req.path.split("/") if p]
    for matcher, label in _ROUTES:
        hit = matcher(parts)
        if hit is not None:
            if req.method != "GET":
                raise MethodNotAllowed(
                    f"{req.method} not supported on {label} (GET only)"
                )
            handler, args = hit
            return label, lambda svc: handler(svc, req, *args)
    raise NotFound(f"no endpoint {req.path!r}")
