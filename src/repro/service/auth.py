"""Per-tenant authentication: HTTP identity -> POSIX credentials.

A tenant is a named principal bound to the *same*
:class:`~repro.host.permissions.Credentials` the host layer uses for
chardev opens — there is one permission model end to end.  The service
authenticates (who is asking?) from the ``X-Repro-Tenant`` header (or
``Authorization: Bearer <tenant>``); authorization (may they?) happens
wherever the read lands, at the POSIX gate of the mechanism's access
channel.  An unprivileged tenant querying a root-gated mechanism is
denied by :mod:`repro.host.permissions` — the service only renders the
denial as a structured 403.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.permissions import ROOT, USER, Credentials
from repro.service.errors import Unauthorized

#: Header carrying the tenant name (WSGI environ key form).
TENANT_HEADER = "HTTP_X_REPRO_TENANT"
AUTHORIZATION_HEADER = "HTTP_AUTHORIZATION"


@dataclass(frozen=True)
class Tenant:
    """One service principal and the POSIX identity it acts as."""

    name: str
    credentials: Credentials

    @property
    def is_privileged(self) -> bool:
        return self.credentials.is_root


class TenantRegistry:
    """The tenants a service instance will authenticate.

    ``anonymous`` names the tenant an unauthenticated request acts as
    (the unprivileged profiling user by default); ``None`` makes
    anonymous requests fail with 401.
    """

    def __init__(self, tenants: list[Tenant] | None = None,
                 anonymous: str | None = "hpcuser"):
        self._tenants: dict[str, Tenant] = {}
        for tenant in tenants if tenants is not None else default_tenants():
            self.add(tenant)
        self.anonymous = anonymous

    def add(self, tenant: Tenant) -> None:
        self._tenants[tenant.name] = tenant

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise Unauthorized(f"unknown tenant {name!r}")
        return tenant

    def authenticate(self, environ: dict) -> Tenant:
        """Resolve the WSGI request's tenant.

        ``X-Repro-Tenant: <name>`` wins; ``Authorization: Bearer
        <name>`` is accepted for bearer-style clients; a request with
        neither acts as the anonymous tenant (or 401 when disabled).
        """
        name = environ.get(TENANT_HEADER, "").strip()
        if not name:
            auth = environ.get(AUTHORIZATION_HEADER, "").strip()
            if auth.lower().startswith("bearer "):
                name = auth[len("bearer "):].strip()
        if not name:
            if self.anonymous is None:
                raise Unauthorized("request carries no tenant identity")
            name = self.anonymous
        return self.get(name)


def default_tenants() -> list[Tenant]:
    """The deployment the paper describes: a root operator and the
    unprivileged profiling user."""
    return [
        Tenant("root", ROOT),
        Tenant("hpcuser", USER),
    ]
