"""The WSGI application and its in-process client.

:class:`ServiceApp` is a plain WSGI callable — pure stdlib, no
framework — so the same object serves three ways:

* in-process through :class:`ServiceClient` (tests, benches, CI smoke);
* under ``wsgiref`` via :func:`serve` (``python -m repro serve``);
* under any production WSGI container, unchanged.

The app owns cross-cutting concerns only: tenant authentication,
error-to-envelope rendering, and the ``repro_service_*`` request
metrics.  Everything endpoint-shaped lives in
:mod:`repro.service.routes`; everything POSIX-shaped happens further
down, at the mechanism and store layers the handlers call into.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterable
from urllib.parse import parse_qs, urlencode

from repro.errors import AccessDeniedError, ConfigError
from repro.obs.instruments import (
    SERVICE_DENIALS,
    SERVICE_REQUEST_SECONDS,
    SERVICE_REQUESTS,
)
from repro.service.auth import TENANT_HEADER, Tenant, TenantRegistry
from repro.service.errors import BadRequest, Forbidden, ServiceError
from repro.service.routes import Request, resolve
from repro.store.engine import ShardedStore

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"  # Prometheus exposition
_NDJSON = "application/x-ndjson"

_REASONS = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
            403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error", 503: "Service Unavailable"}


class ServiceApp:
    """The live monitoring query service over one sharded store.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ShardedStore` queries execute against.
    tenants:
        A :class:`~repro.service.auth.TenantRegistry` (defaults to the
        root + hpcuser pair).
    backends:
        mechanism name -> live backend, for the credentialed
        ``/v2/mech/<name>/read`` endpoint.
    clock:
        Optional virtual clock; ``now()`` feeds fault-plan windows and
        default read times.
    pump:
        Optional callable run between streaming-tail polls — rigs wired
        to a simulated machine advance its event queue here so streams
        observe sweeps landing.
    fleet:
        Optional :class:`~repro.store.FederatedStore`.  When present,
        ``/v2/query/aggregate`` scatter-gathers across the fleet's
        sites (prefixes follow the ``site/location`` convention and
        ``rollup=1`` folds partials into one fleet-wide series); every
        other endpoint keeps serving ``store``.
    """

    def __init__(self, store: ShardedStore,
                 tenants: TenantRegistry | None = None,
                 backends: dict | None = None,
                 clock=None,
                 pump: Callable[[int], None] | None = None,
                 fleet=None):
        self.store = store
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.backends = dict(backends) if backends else {}
        self.clock = clock
        self.pump = pump
        self.fleet = fleet

    def now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    # -- WSGI -----------------------------------------------------------------

    def __call__(self, environ: dict, start_response) -> Iterable[bytes]:
        started = time.perf_counter()
        request = Request(
            method=environ.get("REQUEST_METHOD", "GET"),
            path=environ.get("PATH_INFO") or "/",
            params=parse_qs(environ.get("QUERY_STRING", "")),
        )
        endpoint = request.path
        try:
            request.tenant = self.tenants.authenticate(environ)
            endpoint, handler = resolve(request)
            result = handler(self)
            status, payload, content_type = self._render(result)
        except ServiceError as exc:
            status, payload, content_type = exc.status, exc.envelope(), _JSON
        except AccessDeniedError as exc:
            # The POSIX layer denied the tenant — render it, origin and
            # all, and count the denial against the tenant.
            tenant = request.tenant.name if request.tenant else "unknown"
            SERVICE_DENIALS.labels(tenant).inc()
            forbidden = Forbidden(str(exc))
            status, payload, content_type = 403, forbidden.envelope(), _JSON
        except ConfigError as exc:
            status, payload, content_type = 400, BadRequest(
                str(exc)).envelope(), _JSON

        SERVICE_REQUESTS.labels(endpoint, str(status)).inc()
        SERVICE_REQUEST_SECONDS.labels(endpoint).observe(
            time.perf_counter() - started)
        reason = _REASONS.get(status, "Unknown")
        start_response(f"{status} {reason}",
                       [("Content-Type", content_type)])
        if isinstance(payload, (dict, list)):
            return [json.dumps(payload, sort_keys=True).encode()]
        if isinstance(payload, str):
            return [payload.encode()]
        return (line.encode() for line in payload)  # streaming iterator

    @staticmethod
    def _render(result):
        """Normalize a handler's return into (status, payload, type)."""
        status = 200
        if isinstance(result, tuple):
            result, status = result
        if isinstance(result, (dict, list)):
            return status, result, _JSON
        if isinstance(result, str):
            return status, result, _TEXT
        return status, result, _NDJSON


class ClientResponse:
    """One in-process response: status, headers, body accessors."""

    def __init__(self, status: int, headers: dict, chunks: Iterable[bytes]):
        self.status = status
        self.headers = headers
        self._chunks = chunks
        self._body: bytes | None = None

    @property
    def body(self) -> bytes:
        if self._body is None:
            self._body = b"".join(self._chunks)
        return self._body

    def json(self):
        return json.loads(self.body.decode())

    def lines(self):
        """Parsed NDJSON objects, consumed lazily from the stream."""
        buffer = b""
        for chunk in self._chunks:
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line.decode())
        if buffer.strip():
            yield json.loads(buffer.decode())


class ServiceClient:
    """Drive a :class:`ServiceApp` without sockets — the client the
    tests, the CI smoke and the load generator share."""

    def __init__(self, app: ServiceApp):
        self.app = app

    def get(self, path: str, params: dict | None = None,
            tenant: str | None = None) -> ClientResponse:
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": path,
            "QUERY_STRING": urlencode(params or {}),
        }
        if tenant is not None:
            environ[TENANT_HEADER] = tenant
        captured: dict = {}

        def start_response(status_line: str, headers: list) -> None:
            captured["status"] = int(status_line.split(" ", 1)[0])
            captured["headers"] = dict(headers)

        chunks = self.app(environ, start_response)
        return ClientResponse(captured["status"], captured["headers"], chunks)


def service_for_machine(machine, tenants: TenantRegistry | None = None,
                        backends: dict | None = None,
                        pump_step_s: float | None = None) -> ServiceApp:
    """A :class:`ServiceApp` fronting one simulated BG/Q machine's
    envdb: store, clock and (optionally) a stream pump advancing the
    machine ``pump_step_s`` of virtual time per streaming poll."""
    pump = None
    if pump_step_s is not None:
        def pump(_poll: int, _machine=machine, _dt=float(pump_step_s)) -> None:
            _machine.advance_to(_machine.clock.now + _dt)
    return ServiceApp(machine.envdb.store, tenants=tenants,
                      backends=backends, clock=machine.clock, pump=pump)


def service_for_fleet(fleet, tenants: TenantRegistry | None = None,
                      backends: dict | None = None) -> ServiceApp:
    """A :class:`ServiceApp` fronting a :class:`~repro.fleet.Fleet`:
    aggregates scatter-gather across every site's store while the
    single-store endpoints serve the first site (sorted order) — the
    fleet shares one schema, so table listings and plans agree."""
    first = fleet.site(fleet.site_names[0])
    return ServiceApp(first.store, tenants=tenants, backends=backends,
                      clock=first.machine.clock, fleet=fleet.federation)


def serve(app: ServiceApp, host: str = "127.0.0.1",
          port: int = 8340) -> None:  # pragma: no cover - needs a socket
    """Serve under wsgiref (the ``python -m repro serve`` entry)."""
    from wsgiref.simple_server import make_server

    with make_server(host, port, app) as httpd:
        print(f"repro.service listening on http://{host}:{port} "
              f"(tenants: {', '.join(app.tenants.names())})")
        httpd.serve_forever()


__all__ = [
    "ClientResponse",
    "ServiceApp",
    "ServiceClient",
    "Tenant",
    "serve",
    "service_for_fleet",
    "service_for_machine",
]
