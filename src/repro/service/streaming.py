"""Streaming tail of fresh readings, with shard-dark degradation.

The stream is a chunked NDJSON iterator: one JSON object per line,
either a reading or a marker.  It polls the store's ingest-ordered
tail cursor in bounded pages, so a consumer resumes exactly where it
left off and a slow consumer never blocks ingest (per-shard locks are
held only for the page copy).

Degradation reuses :mod:`repro.chaos`: the store's shards are probed
through a ``store-shard`` access channel, so an active
:class:`~repro.chaos.faults.FaultPlan` with a ``mechanism="store"``
rule takes shards dark mid-stream exactly like it takes a sensor bus
dark mid-session.  A stream crossing a dark shard emits a **gap
marker** — the consumer knows rows are missing — and keeps going;
an aggregate query over a dark shard refuses with 503 instead of
serving a partial sum silently.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator

import numpy as np

from repro.chaos.injector import injector_for
from repro.mech.channel import AccessChannel
from repro.obs.instruments import SERVICE_STREAM_GAPS, SERVICE_STREAM_ROWS
from repro.store.engine import ShardedStore
from repro.store.reading import Reading

#: The store's query path as a faultable channel: chaos rules target
#: ``mechanism="store"`` with one device label per shard (``shard3``).
STORE_CHANNEL = AccessChannel(
    "store-shard", 0.0,
    description="one store shard's query path, as a faultable channel",
)


def dark_shards(store: ShardedStore, now: float) -> set[int]:
    """The shard indices the active fault plan takes dark at ``now``.

    With no plan installed this is one injector lookup returning an
    empty set — queries outside chaos runs pay a single check, like
    the mechanism read path.
    """
    out: set[int] = set()
    probe = np.array([now], dtype=np.float64)
    for index in range(store.n_shards):
        injector = injector_for(STORE_CHANNEL, "store", f"shard{index}", 1)
        if injector is None:
            break
        if bool(injector.cross_block(probe)[0]):
            out.add(index)
    return out


def reading_json(reading: Reading) -> dict:
    """The wire shape of one reading (dark fields serialize as NaN)."""
    return {
        "t": reading.timestamp,
        "location": reading.location,
        "mechanism": reading.mechanism,
        "values": dict(reading.values),
    }


def _line(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True) + "\n"


def tail_stream(store: ShardedStore, table: str, cursor: int | None = None,
                location_prefix: str = "", page: int = 256,
                batches: int | None = 10,
                now: Callable[[], float] = lambda: 0.0,
                pump: Callable[[int], None] | None = None) -> Iterator[str]:
    """Yield the NDJSON lines of one tail stream.

    Each poll emits gap markers for shards that went dark since the
    last poll, then one line per fresh reading (at most ``page``), then
    advances the cursor.  ``cursor=None`` starts at the ingest head —
    only readings ingested after the stream opened.  ``batches`` bounds
    the number of polls (``None`` streams until the consumer hangs up —
    the HTTP endpoint always bounds it).  ``pump`` runs between polls;
    servers wired to a simulated machine advance its event queue there
    so the stream observes sweeps landing in virtual time.
    """
    position = store.ingest_cursor if cursor is None else cursor
    yield _line({"marker": "open", "table": table, "cursor": position,
                 "prefix": location_prefix})
    known_dark: set[int] = set()
    poll = 0
    while batches is None or poll < batches:
        poll += 1
        t = now()
        dark = dark_shards(store, t)
        fresh_dark = sorted(dark - known_dark)
        if fresh_dark:
            SERVICE_STREAM_GAPS.inc(len(fresh_dark))
            yield _line({"marker": "gap", "shards": fresh_dark, "t": t,
                         "cursor": position,
                         "detail": "shards dark under the active fault plan; "
                                   "rows from them may be missing"})
        known_dark = dark
        batch = store.tail(table, position, location_prefix, limit=page)
        position = batch.cursor
        if batch.readings:
            SERVICE_STREAM_ROWS.inc(len(batch.readings))
            for reading in batch.readings:
                yield _line(reading_json(reading))
        if pump is not None:
            pump(poll)
    yield _line({"marker": "end", "cursor": position, "polls": poll})
