"""Exception hierarchy for the repro package.

Every error raised by the simulated vendor mechanisms derives from
:class:`ReproError` so callers can distinguish simulation faults from
ordinary Python errors.  The device-facing errors mirror the failure modes
the paper discusses: permission gates on the RAPL MSR driver, unsupported
hardware generations in NVML, stale or overflowed counters, and SCIF
transport failures on the Xeon Phi.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulation core was misused (time reversal,
    running a finished simulation, etc.)."""


class ClockError(SimulationError):
    """An operation attempted to move the virtual clock backwards."""


class DeviceError(ReproError):
    """Base class for errors raised by a simulated device."""


class DeviceNotFoundError(DeviceError):
    """Lookup of a device by index or handle failed."""


class UnsupportedDeviceError(DeviceError):
    """The requested operation is not supported on this device generation
    (e.g. NVML power readings on a pre-Kepler GPU)."""


class SensorError(DeviceError):
    """A sensor read failed or the sensor does not exist."""


class CounterOverflowError(SensorError):
    """An energy counter wrapped more than once between reads, making the
    delta unrecoverable (RAPL sampled slower than ~60 s)."""


class StaleDataError(SensorError):
    """The requested reading is older than the caller's staleness bound."""


class VfsError(ReproError):
    """Base class for virtual-filesystem errors."""


class FileNotFoundVfsError(VfsError):
    """Path does not exist in the virtual filesystem."""


class NotADirectoryVfsError(VfsError):
    """A path component is not a directory."""


class IsADirectoryVfsError(VfsError):
    """File operation attempted on a directory."""


class FileExistsVfsError(VfsError):
    """Exclusive creation failed because the path already exists."""


class AccessDeniedError(VfsError):
    """POSIX-style permission check failed (e.g. non-root open of
    ``/dev/cpu/0/msr``)."""


class DriverError(ReproError):
    """A simulated kernel driver rejected the request."""


class DriverNotLoadedError(DriverError):
    """The kernel driver backing an interface is not loaded (e.g. the
    ``msr`` module)."""


class KernelTooOldError(DriverError):
    """The simulated kernel predates the requested interface (perf_event
    RAPL support needs Linux >= 3.14)."""


class ScifError(DeviceError):
    """SCIF transport failure on the Xeon Phi."""


class ScifDisconnectedError(ScifError):
    """The SCIF endpoint is not connected."""


class IpmbError(DeviceError):
    """Malformed or unanswerable IPMB (out-of-band) request."""


class ChecksumError(IpmbError):
    """IPMB message failed checksum validation."""


class RuntimeSimError(ReproError):
    """Base class for SPMD runtime errors."""


class DeadlockError(RuntimeSimError):
    """All live ranks are blocked and no message can match."""


class RankError(RuntimeSimError):
    """A rank function raised; wraps the original exception."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")


class MoneqError(ReproError):
    """Base class for MonEQ API errors."""


class MoneqStateError(MoneqError):
    """MonEQ API called out of order (finalize before initialize, nested
    initialize, tag closed twice, ...)."""


class MoneqBufferFullError(MoneqError):
    """The preallocated collection buffer filled before finalize."""


class ConfigError(ReproError):
    """Invalid configuration value (polling interval out of the hardware's
    valid range, negative buffer size, ...)."""


class ObservabilityError(ReproError):
    """Misuse of the ``repro.obs`` subsystem (bad metric/label names,
    label-cardinality blowups, counters decremented, spans closed out of
    order, ...)."""


class WorkloadError(ReproError):
    """Workload model misconfiguration (negative duration, unknown
    component, overlapping phases)."""


class ExperimentExecutionError(ReproError):
    """One or more experiment tasks failed in the execution engine
    (worker crash/timeout after its retry, or a task exception)."""


class ChaosError(ReproError):
    """Misuse of the fault-injection subsystem (activating a second
    plan over an installed one, deactivating a plan that is not
    active, unknown chaos scenario, ...)."""


class PackError(ConfigError):
    """Invalid scenario-pack manifest (unknown key, wrong type, missing
    mechanism, unknown pack name, ...).  The message always names the
    offending manifest field by its dotted path."""
