"""Figure 6 — the Xeon Phi control-panel software architecture.

The paper reproduces Intel's architecture diagram: the host and
coprocessor SCIF stacks, and the three data paths — (1) "in-band"
through the SysMgmt SCIF interface, (2) "out-of-band" through the SMC
and BMC, (3) MICRAS.  A diagram is structural, so the regeneration
builds the component graph with networkx, verifies each path exists in
the *simulator's wiring*, and annotates the paths with the measured
per-query costs the other experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.xeonphi.ipmb import IPMB_EXCHANGE_LATENCY_S
from repro.xeonphi.micras import MICRAS_READ_LATENCY_S
from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S

#: The three named paths of Figure 6, as node sequences.
PATHS: dict[str, list[str]] = {
    "in-band": [
        "host application", "mic access sdk", "host user scif",
        "host scif driver", "pcie bus", "coprocessor scif driver",
        "sysmgmt scif interface", "monitoring thread", "card registers",
    ],
    "out-of-band": [
        "card registers", "smc", "ipmb", "bmc", "user",
    ],
    "micras": [
        "card application", "micras pseudo-files", "micras daemon",
        "card registers",
    ],
}

#: Measured per-query cost of each path (seconds).
PATH_COSTS: dict[str, float] = {
    "in-band": SYSMGMT_QUERY_LATENCY_S,
    "out-of-band": IPMB_EXCHANGE_LATENCY_S,
    "micras": MICRAS_READ_LATENCY_S,
}


@dataclass(frozen=True)
class Fig6Result:
    """The architecture graph plus per-path reachability and cost."""

    graph: nx.DiGraph
    path_exists: dict[str, bool]
    path_costs: dict[str, float]
    symmetric_scif: bool


def build_graph() -> nx.DiGraph:
    """The Figure 6 component graph."""
    graph = nx.DiGraph()
    for name, nodes in PATHS.items():
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b, path=name)
    # Symmetry property: the same SCIF interface exists on both sides.
    graph.nodes["host user scif"]["layer"] = "user"
    graph.add_edge("card application", "card user scif", path="symmetry")
    graph.add_edge("card user scif", "coprocessor scif driver", path="symmetry")
    return graph


def run() -> Fig6Result:
    """Regenerate the Figure 6 structure and verify it."""
    graph = build_graph()
    exists = {
        name: nx.has_path(graph, nodes[0], nodes[-1])
        for name, nodes in PATHS.items()
    }
    # SCIF symmetry: user-level SCIF endpoints exist host- and card-side.
    symmetric = ("host user scif" in graph) and ("card user scif" in graph)
    return Fig6Result(
        graph=graph, path_exists=exists, path_costs=dict(PATH_COSTS),
        symmetric_scif=symmetric,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print("Figure 6: Xeon Phi control-panel architecture "
          f"({result.graph.number_of_nodes()} components, "
          f"{result.graph.number_of_edges()} links)")
    for name in PATHS:
        cost_ms = 1000.0 * result.path_costs[name]
        print(f"  {name:12s} reachable={result.path_exists[name]}  "
              f"per-query cost={cost_ms:.2f} ms")
    print(f"  SCIF symmetric across host/card: {result.symmetric_scif}")


def render(result: Fig6Result) -> ExperimentReport:
    """Figure 6's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 6", "Phi control-panel software architecture",
        "benchmarks/bench_fig6.py",
        [
            ("paths", "in-band, out-of-band, MICRAS all present",
             f"reachable: {result.path_exists}"),
            ("SCIF symmetry", "same interfaces host and card",
             str(result.symmetric_scif)),
            ("per-query costs", "(measured elsewhere in paper)",
             ", ".join(f"{k}={1000 * v:.2f} ms"
                       for k, v in result.path_costs.items())),
        ],
        notes="A diagram has no data series; the reproduction checks the "
              "graph structure and path costs instead.",
    )


SPEC = ExperimentSpec(
    exp_id="fig6", title="Figure 6 — Phi control-panel architecture",
    module="repro.experiments.fig6", config=None, seed=0,
    sources=("repro.xeonphi",),
    cost_hint_s=0.001,
)
