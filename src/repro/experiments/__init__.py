"""Experiment regenerators — one module per paper table/figure.

Each module exposes ``run(...)`` returning a structured result (the
rows/series the paper reports) and ``main()`` printing it.  The
benchmarks in ``benchmarks/`` wrap these, and EXPERIMENTS.md records
paper-vs-measured for each.
"""

from repro.experiments import (  # noqa: F401
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    overheads,
    rapl_overflow,
    table1,
    table2,
    table3,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "overheads": overheads,
    "rapl_overflow": rapl_overflow,
}
