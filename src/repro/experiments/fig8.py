"""Figure 8 — summed power of Gaussian elimination on 128 Stampede Phis.

"Sum of power consumption for a Gaussian Elimination workload running
on 128 Xeon Phi cards on Stampede.  Data generation takes place for
about the first 100 seconds.  After which, data is transferred to the
cards and computation begins."  The sum sits near 128 x ~110 W = ~14 kW
during host-side datagen and jumps to ~128 x ~190 W = ~25 kW for the
compute phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.trace import TraceSeries
from repro.testbeds import stampede_slice
from repro.workloads.gaussian import OffloadGaussianWorkload

CARDS = 128
SAMPLE_S = 1.0


@dataclass(frozen=True)
class Fig8Result:
    """The summed-power series and the phase levels."""

    series: TraceSeries
    cards: int
    datagen_mean_w: float
    compute_mean_w: float
    datagen_end_s: float
    compute_start_s: float


def run(seed: int = 0xF168, cards: int = CARDS) -> Fig8Result:
    """Regenerate Figure 8's summed series over ``cards`` cards."""
    cluster = stampede_slice(cards=cards, seed=seed)
    workload = OffloadGaussianWorkload(datagen_seconds=100.0)
    for card in cluster.devices("mic"):
        card.board.schedule(workload, t_start=0.0)
    horizon = workload.duration + 10.0
    times = np.arange(0.0, horizon, SAMPLE_S)
    total = np.zeros_like(times)
    for card in cluster.devices("mic"):
        total += card.true_power(times)
    series = TraceSeries(times, total, name="sum_power", units="W")

    transfer = workload.metadata["transfer_seconds"]
    datagen = series.between(5.0, 95.0)
    compute = series.between(100.0 + transfer + 5.0, workload.duration - 10.0)
    return Fig8Result(
        series=series,
        cards=cards,
        datagen_mean_w=datagen.mean(),
        compute_mean_w=compute.mean(),
        datagen_end_s=100.0,
        compute_start_s=100.0 + transfer,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.analysis.figures import ascii_chart

    result = run()
    print(ascii_chart(result.series, width=70, height=12,
                      title=f"Figure 8: sum power over {result.cards} Phi cards (W)"))
    print(f"\nFigure 8: sum power over {result.cards} Xeon Phi cards "
          f"({len(result.series)} samples)")
    print(f"  datagen phase : {result.datagen_mean_w / 1e3:.1f} kW "
          "(cards idle; paper: ~14-15 kW)")
    print(f"  compute phase : {result.compute_mean_w / 1e3:.1f} kW "
          "(paper: rises toward ~25 kW)")
    print(f"  computation begins at ~{result.compute_start_s:.0f} s "
          "(paper: shortly after 100 s)")


@dataclass(frozen=True)
class Fig8Config:
    seed: int = 0xF168
    cards: int = CARDS


def render(result: Fig8Result) -> ExperimentReport:
    """Figure 8's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 8", "Sum power, Gaussian elimination on 128 Stampede Phis",
        "benchmarks/bench_fig8.py",
        [
            ("datagen phase", "~first 100 s, low",
             f"{result.datagen_mean_w / 1e3:.1f} kW"),
            ("compute phase", "rises toward ~25 kW",
             f"{result.compute_mean_w / 1e3:.1f} kW"),
            ("transition", "visible where generation stops",
             f"at {result.compute_start_s:.0f} s, "
             f"{result.compute_mean_w / result.datagen_mean_w:.2f}x jump"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig8", title="Figure 8 — sum power on 128 Stampede Phis",
    module="repro.experiments.fig8", config=Fig8Config(), seed=0xF168,
    sources=("repro.xeonphi", "repro.testbeds", "repro.workloads",
             "repro.host"),
    cost_hint_s=0.04,
)
