"""The per-query overhead survey (§II running text).

Paper numbers:

==================  ============  =========================
mechanism           per query     overhead at paper cadence
==================  ============  =========================
BG/Q EMON           ~1.10 ms      ~0.19 % (560 ms polls)
RAPL via MSR        ~0.03 ms      (fastest of all)
NVML                ~1.3 ms       ~1.25 % (100 ms polls)
Phi SysMgmt API     ~14.2 ms      ~14 % (100 ms polls)
Phi MICRAS daemon   ~0.04 ms      (RAPL-class)
==================  ============  =========================

The regeneration *measures* each cost on the simulators by timing a
query's effect on the virtual clock, rather than quoting the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.bgq.machine import BgqMachine
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.host.permissions import ROOT
from repro.rapl.driver import read_msr_userspace
from repro.rapl.msr import MSR_PKG_ENERGY_STATUS
from repro.sim.rng import RngRegistry
from repro.testbeds import gpu_node, phi_node, rapl_node


@dataclass(frozen=True)
class MechanismCost:
    """One mechanism's measured per-query latency and duty overhead."""

    mechanism: str
    per_query_s: float
    poll_interval_s: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.per_query_s / self.poll_interval_s


@dataclass(frozen=True)
class OverheadsResult:
    costs: dict[str, MechanismCost]

    def ordering(self) -> list[str]:
        """Mechanisms sorted cheapest-first."""
        return sorted(self.costs, key=lambda m: self.costs[m].per_query_s)


def _timed(clock, fn) -> float:
    t0 = clock.now
    fn()
    return clock.now - t0


def run(seed: int = 0x0EAD) -> OverheadsResult:
    """Measure each mechanism's per-query cost on the simulators."""
    costs: dict[str, MechanismCost] = {}

    # BG/Q EMON.
    machine = BgqMachine(racks=1, rng=RngRegistry(seed), start_poller=False)
    machine.clock.advance(1.0)
    emon = machine.emon("R00-M0-N00")
    cost = _timed(machine.clock, lambda: emon.collect())
    costs["bgq-emon"] = MechanismCost("BG/Q EMON", cost, 0.560)

    # RAPL via the msr chardev.
    node, _ = rapl_node(seed=seed)
    node.clock.advance(1.0)
    cost = _timed(node.clock,
                  lambda: read_msr_userspace(node, 0, MSR_PKG_ENERGY_STATUS, ROOT))
    costs["rapl-msr"] = MechanismCost("RAPL via MSR", cost, 0.060)

    # NVML.
    gnode, _, nvml = gpu_node(seed=seed)
    handle = nvml.device_get_handle_by_index(0)
    gnode.clock.advance(1.0)
    cost = _timed(gnode.clock, lambda: nvml.device_get_power_usage(handle))
    costs["nvml"] = MechanismCost("NVML", cost, 0.100)

    # Phi: both paths on one rig.
    rig = phi_node(seed=seed)
    rig.node.clock.advance(1.0)
    cost = _timed(rig.node.clock, rig.sysmgmt.query_power_w)
    costs["phi-sysmgmt"] = MechanismCost("Phi SysMgmt API", cost, 0.100)
    cost = _timed(rig.node.clock, lambda: rig.micras.read("power"))
    costs["phi-micras"] = MechanismCost("Phi MICRAS daemon", cost, 0.050)

    return OverheadsResult(costs=costs)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    rows = [
        [c.mechanism, 1000.0 * c.per_query_s, c.poll_interval_s, c.overhead_percent]
        for c in result.costs.values()
    ]
    print(format_table(
        ["Mechanism", "per query (ms)", "poll (s)", "overhead (%)"], rows,
        title="Per-query collection overheads (measured on the simulators)",
        float_format="{:.3f}",
    ))
    print(f"\ncheapest-first: {result.ordering()}")


@dataclass(frozen=True)
class OverheadsConfig:
    seed: int = 0x0EAD


def render(result: OverheadsResult) -> ExperimentReport:
    """The per-query overhead block (§II text)."""
    paper_ms = {"bgq-emon": 1.10, "rapl-msr": 0.03, "nvml": 1.3,
                "phi-sysmgmt": 14.2, "phi-micras": 0.04}
    rows = [
        (result.costs[key].mechanism, f"{paper_ms[key]} ms",
         f"{1000 * result.costs[key].per_query_s:.3f} ms")
        for key in paper_ms
    ]
    rows.append(("duty overheads", "BG/Q 0.19 %, NVML 1.25 %, Phi API ~14 %",
                 f"BG/Q {result.costs['bgq-emon'].overhead_percent:.2f} %, "
                 f"NVML {result.costs['nvml'].overhead_percent:.2f} %, "
                 f"Phi API {result.costs['phi-sysmgmt'].overhead_percent:.1f} %"))
    return ExperimentReport(
        "§II text", "Per-query collection overheads",
        "benchmarks/bench_overheads.py", rows,
    )


SPEC = ExperimentSpec(
    exp_id="overheads", title="§II — per-query collection overheads",
    module="repro.experiments.overheads", config=OverheadsConfig(), seed=0x0EAD,
    sources=("repro.bgq", "repro.rapl", "repro.nvml", "repro.xeonphi",
             "repro.testbeds", "repro.host", "repro.store"),
    cost_hint_s=0.01,
)
