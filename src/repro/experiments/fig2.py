"""Figure 2 — the same MMPS run as seen by MonEQ.

"Power as observed from the data collected by MonEQ across the 7
domains available captured at 560 ms.  The top line represented the
power consumption of the node card.  This data is the same as that
collected from the BPMs, but at a higher sampling frequency" — and,
because MonEQ collects at run time only, "the idle period before and
after the application run is no longer visible".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import Agreement, series_agreement
from repro.bgq.domains import BGQ_DOMAINS
from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.experiments import fig1
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceSeries, TraceSet
from repro.workloads.mmps import MmpsWorkload

BOARD = "R00-M0-N00"


@dataclass(frozen=True)
class Fig2Result:
    """Per-domain traces, the node-card total, and the BPM cross-check."""

    domains: TraceSet
    node_card: TraceSeries
    samples: int
    agreement_with_bpm: Agreement
    idle_samples_present: bool


def run(seed: int = 0xF162, interval_s: float = 0.560,
        duration_s: float = 1500.0) -> Fig2Result:
    """Profile MMPS with MonEQ on one node card at 560 ms."""
    machine = BgqMachine(racks=1, rng=RngRegistry(seed), start_poller=False)
    boards = machine.run_job(MmpsWorkload(duration=duration_s), node_count=32,
                             t_start=0.0)
    board = boards[0]
    session = MoneqSession(
        [BgqEmonBackend(machine.emon(board.location))], machine.events,
        config=MoneqConfig(polling_interval_s=interval_s), node_count=32,
    )
    machine.events.run_until(session.t_start + duration_s)
    result = session.finalize()
    traces = result.traces[board.location]
    node_card = traces["node_card_w"]

    # Cross-check against the BPM's DC-output view of the same board at
    # mid-run (the paper's "matches ... in terms of total power").
    bpm = machine.bpm(board.location)
    mid = duration_s / 2.0
    bpm_series = TraceSeries(
        node_card.times, bpm.output_power_w(node_card.times),
        name="bpm_output", units="W",
    )
    agreement = series_agreement(node_card, bpm_series,
                                 window=(mid - 200.0, mid + 200.0))

    # MonEQ only samples while the session runs with the app: no
    # pre/post idle shelf in the data.
    idle_present = bool(
        (node_card.values < 0.8 * node_card.mean()).sum() > len(node_card) * 0.05
    )
    domain_set = TraceSet({
        spec.domain.value: traces[f"{spec.domain.value}_w"]
        for spec in BGQ_DOMAINS
    })
    return Fig2Result(
        domains=domain_set,
        node_card=node_card,
        samples=len(node_card),
        agreement_with_bpm=agreement,
        idle_samples_present=idle_present,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(f"Figure 2: MonEQ 7-domain capture at 560 ms ({result.samples} samples)")
    for name in result.domains.names:
        series = result.domains[name]
        print(f"  {name:16s} mean={series.mean():8.1f} W")
    print(f"  node card        mean={result.node_card.mean():8.1f} W")
    print(f"agreement with BPM output: "
          f"{100 * result.agreement_with_bpm.relative_difference:.1f}% difference")
    print(f"idle shelf visible: {result.idle_samples_present} (paper: no)")
    fig1_result = fig1.run()
    print(f"sample count vs Figure 1: {result.samples} vs {fig1_result.samples}")


@dataclass(frozen=True)
class Fig2Config:
    seed: int = 0xF162
    interval_s: float = 0.560
    duration_s: float = 1500.0


def render(result: Fig2Result) -> ExperimentReport:
    """Figure 2's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 2", "MMPS via MonEQ: 7 domains at 560 ms",
        "benchmarks/bench_fig2.py",
        [
            ("domains", "7 (chip core largest)",
             f"{len(result.domains)}; largest = "
             f"{max(result.domains.names, key=lambda n: result.domains[n].mean())}"),
            ("total vs BPM", "matches in total power",
             f"{100 * result.agreement_with_bpm.relative_difference:.1f} % apart"),
            ("idle period", "no longer visible",
             f"visible={result.idle_samples_present}"),
            ("data volume", "many more points than BPM",
             f"{result.samples} samples"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig2", title="Figure 2 — MMPS via MonEQ, 7 domains at 560 ms",
    module="repro.experiments.fig2", config=Fig2Config(), seed=0xF162,
    sources=("repro.bgq", "repro.core", "repro.workloads", "repro.store",
             "repro.host", "repro.experiments.fig1"),
    cost_hint_s=0.04,
)
