"""Figure 7 — boxplot of Phi power: SysMgmt API vs MICRAS daemon.

"Boxplot of power data for both the SysMgmt API ('in-band') and daemon
capture methods. ...  while slight, there is a statistically
significant difference between the two collection methods" — because
the in-band query runs code on the card that "wasn't already executing
on the device before the call was made".

Both arms profile the same no-op workload on the same card; only the
collection path changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.boxplot import BoxplotStats, boxplot_stats
from repro.analysis.stats import TTestResult, welch_ttest
from repro.core.moneq.backends import PhiMicrasBackend, PhiSysMgmtBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.testbeds import phi_node
from repro.workloads.noop import PhiNoopWorkload

#: Each arm's capture length and the polling cadence.
ARM_S = 120.0
INTERVAL_S = 1.0


@dataclass(frozen=True)
class Fig7Result:
    """Both arms' samples, their boxplots, and the significance test."""

    api_samples: np.ndarray
    daemon_samples: np.ndarray
    api_box: BoxplotStats
    daemon_box: BoxplotStats
    ttest: TTestResult


def _capture(rig, backend_factory, t_settle: float = 20.0) -> np.ndarray:
    """Run one arm: settle, profile ARM_S of the noop at INTERVAL_S."""
    backend = backend_factory(rig)
    rig.node.events.run_until(rig.node.clock.now + t_settle)
    session = MoneqSession(
        [backend], rig.node.events,
        config=MoneqConfig(polling_interval_s=INTERVAL_S), node_count=1,
        vfs=rig.node.vfs,
    )
    rig.node.events.run_until(session.t_start + ARM_S)
    return session.finalize().trace("card_w").values


def run(seed: int = 0xF167) -> Fig7Result:
    """Regenerate Figure 7: daemon arm first, then the API arm on the
    same card and workload."""
    rig = phi_node(seed=seed)
    rig.card.board.schedule(PhiNoopWorkload(duration=600.0), t_start=0.0)
    daemon = _capture(rig, lambda r: PhiMicrasBackend(r.micras))
    api = _capture(rig, lambda r: PhiSysMgmtBackend(r.sysmgmt))
    return Fig7Result(
        api_samples=api,
        daemon_samples=daemon,
        api_box=boxplot_stats(api),
        daemon_box=boxplot_stats(daemon),
        ttest=welch_ttest(api, daemon),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print("Figure 7: Phi power under the two capture methods")
    for label, box in [("API (in-band)", result.api_box),
                       ("Daemon", result.daemon_box)]:
        print(f"  {label:14s} median={box.median:7.2f} W  "
              f"IQR=[{box.q1:.2f}, {box.q3:.2f}]  "
              f"whiskers=[{box.whisker_low:.2f}, {box.whisker_high:.2f}]")
    print(f"  mean difference: {result.ttest.mean_difference:+.2f} W, "
          f"Welch p={result.ttest.pvalue:.2e} "
          f"(significant: {result.ttest.significant()})")


@dataclass(frozen=True)
class Fig7Config:
    seed: int = 0xF167


def render(result: Fig7Result) -> ExperimentReport:
    """Figure 7's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 7", "Phi power boxplot: SysMgmt API vs daemon",
        "benchmarks/bench_fig7.py",
        [
            ("API median", "~115.5-117 W band", f"{result.api_box.median:.2f} W"),
            ("daemon median", "~113-115 W band", f"{result.daemon_box.median:.2f} W"),
            ("difference", "slight but statistically significant",
             f"{result.ttest.mean_difference:+.2f} W, p={result.ttest.pvalue:.1e}"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig7", title="Figure 7 — Phi power boxplot, API vs daemon",
    module="repro.experiments.fig7", config=Fig7Config(), seed=0xF167,
    sources=("repro.core", "repro.xeonphi", "repro.testbeds",
             "repro.workloads", "repro.host"),
    cost_hint_s=0.01,
)
