"""Figure 3 — RAPL package power of Gaussian elimination at 100 ms.

"Power consumption of a Gaussian Elimination workload captured at
100 ms for the whole CPU package.  Capture started before and
terminated after program execution."  The notable features: the idle
shelf on both ends, the ~45-50 W plateau, "the rhythmic drop of about
5 Watts in power consumption throughout the execution", and "between
these drops there are tiny spikes in power at regular intervals".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moneq.backends import RaplMsrBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.trace import TraceSeries
from repro.testbeds import rapl_node
from repro.workloads.gaussian import GaussianEliminationWorkload

#: Capture geometry: idle head, ~52 s workload, idle tail (~70 s total).
WORKLOAD_START_S = 8.0
CAPTURE_S = 70.0


@dataclass(frozen=True)
class Fig3Result:
    """The pkg trace plus the three structural observations."""

    series: TraceSeries
    idle_head_w: float
    idle_tail_w: float
    plateau_w: float
    drop_depth_w: float
    drop_period_s: float
    spike_height_w: float


def run(seed: int = 0xF163, interval_s: float = 0.100) -> Fig3Result:
    """Regenerate Figure 3's series."""
    workload = GaussianEliminationWorkload(n=12_000, gflops=22.0, sync_period=5.0)
    node, _ = rapl_node(seed=seed, workload=workload,
                        workload_start=WORKLOAD_START_S)
    package = node.device("cpu")
    session = MoneqSession(
        [RaplMsrBackend(package, label="pkg0")], node.events,
        config=MoneqConfig(polling_interval_s=interval_s), node_count=1,
        vfs=node.vfs,
    )
    node.events.run_until(session.t_start + CAPTURE_S)
    trace = session.finalize().trace("pkg_w")
    # Drop the first sample (no previous counter to difference against).
    series = TraceSeries(trace.times[1:], trace.values[1:], "pkg_w", "W")

    t_end = WORKLOAD_START_S + workload.duration
    head = series.between(1.0, WORKLOAD_START_S - 1.0)
    tail = series.between(t_end + 2.0, CAPTURE_S - 1.0)
    busy = series.between(WORKLOAD_START_S + 2.0, t_end - 2.0)
    # Plateau vs drop: the top and bottom deciles of the busy window.
    plateau = float(np.percentile(busy.values, 80.0))
    trough = float(np.percentile(busy.values, 3.0))
    # Spike height: max above the plateau.
    spike = float(busy.values.max() - plateau)
    return Fig3Result(
        series=series,
        idle_head_w=head.mean(),
        idle_tail_w=tail.mean(),
        plateau_w=plateau,
        drop_depth_w=plateau - trough,
        drop_period_s=workload.metadata["sync_period"],
        spike_height_w=spike,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.analysis.figures import ascii_chart

    result = run()
    print(ascii_chart(result.series, width=70, height=14,
                      title="Figure 3: RAPL package power (W) vs time"))
    print(f"\nFigure 3: RAPL package power, {len(result.series)} samples at 100 ms")
    print(f"  idle head/tail : {result.idle_head_w:.1f} / {result.idle_tail_w:.1f} W")
    print(f"  plateau        : {result.plateau_w:.1f} W (paper: ~45-50 W)")
    print(f"  rhythmic drop  : {result.drop_depth_w:.1f} W every "
          f"{result.drop_period_s:.1f} s (paper: ~5 W)")
    print(f"  spikes between : +{result.spike_height_w:.1f} W")


@dataclass(frozen=True)
class Fig3Config:
    seed: int = 0xF163
    interval_s: float = 0.100


def render(result: Fig3Result) -> ExperimentReport:
    """Figure 3's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 3", "RAPL package power of Gaussian elimination (100 ms)",
        "benchmarks/bench_fig3.py",
        [
            ("idle shelf", "visible both ends",
             f"head {result.idle_head_w:.1f} W / tail {result.idle_tail_w:.1f} W"),
            ("plateau", "~45-50 W", f"{result.plateau_w:.1f} W"),
            ("rhythmic drop", "~5 W", f"{result.drop_depth_w:.1f} W "
             f"every {result.drop_period_s:.1f} s"),
            ("tiny spikes", "between drops", f"+{result.spike_height_w:.1f} W"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig3", title="Figure 3 — RAPL package power, Gaussian elimination",
    module="repro.experiments.fig3", config=Fig3Config(), seed=0xF163,
    sources=("repro.core", "repro.rapl", "repro.testbeds",
             "repro.workloads", "repro.host"),
    cost_hint_s=0.03,
)
