"""Figure 4 — NOOP workload power on a K20 at 100 ms.

"Power consumption of a NOOP workload on a NVIDIA K20 GPU captured at
100 ms.  Shows gradual increase until finally leveling off and staying
there for the rest of the time."  The ramp takes ~5 s; the level is
~55 W from a ~44-46 W start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moneq.backends import NvmlBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.trace import TraceSeries
from repro.testbeds import gpu_node
from repro.workloads.noop import GpuNoopWorkload

CAPTURE_S = 12.5


@dataclass(frozen=True)
class Fig4Result:
    """The board-power trace plus ramp shape metrics."""

    series: TraceSeries
    start_w: float
    level_w: float
    time_to_level_s: float


def run(seed: int = 0xF164, interval_s: float = 0.100) -> Fig4Result:
    """Regenerate Figure 4's series."""
    node, gpu, _ = gpu_node(seed=seed)
    gpu.board.schedule(GpuNoopWorkload(duration=CAPTURE_S), t_start=0.0)
    session = MoneqSession(
        [NvmlBackend(gpu)], node.events,
        config=MoneqConfig(polling_interval_s=interval_s), node_count=1,
        vfs=node.vfs,
    )
    node.events.run_until(session.t_start + CAPTURE_S)
    series = session.finalize().trace("board_w")

    level = float(np.median(series.between(8.0, CAPTURE_S).values))
    start = float(series.values[0])
    # Time to reach 95% of the rise (smoothed against the +/-5 W noise).
    window = 5
    smooth = np.convolve(series.values, np.ones(window) / window, mode="valid")
    smooth_times = series.times[window - 1:]
    target = start + 0.95 * (level - start)
    above = np.nonzero(smooth >= target)[0]
    time_to_level = float(smooth_times[above[0]]) if len(above) else float("inf")
    return Fig4Result(series=series, start_w=start, level_w=level,
                      time_to_level_s=time_to_level)


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.analysis.figures import ascii_chart

    result = run()
    print(ascii_chart(result.series, width=70, height=12,
                      title="Figure 4: K20 NOOP board power (W) vs time"))
    print(f"\nFigure 4: K20 NOOP power, {len(result.series)} samples at 100 ms")
    print(f"  start : {result.start_w:.1f} W (paper: ~44-46 W)")
    print(f"  level : {result.level_w:.1f} W (paper: ~55 W)")
    print(f"  levels off after ~{result.time_to_level_s:.1f} s (paper: ~5 s)")


@dataclass(frozen=True)
class Fig4Config:
    seed: int = 0xF164
    interval_s: float = 0.100


def render(result: Fig4Result) -> ExperimentReport:
    """Figure 4's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 4", "K20 NOOP power ramp (100 ms)", "benchmarks/bench_fig4.py",
        [
            ("start -> level", "~44-46 -> ~55 W",
             f"{result.start_w:.1f} -> {result.level_w:.1f} W"),
            ("ramp duration", "~5 s", f"{result.time_to_level_s:.1f} s"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig4", title="Figure 4 — K20 NOOP power ramp",
    module="repro.experiments.fig4", config=Fig4Config(), seed=0xF164,
    sources=("repro.core", "repro.nvml", "repro.testbeds",
             "repro.workloads", "repro.host"),
    cost_hint_s=0.002,
)
