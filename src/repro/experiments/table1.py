"""Table I — the cross-platform sensor availability matrix."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capability import (
    PLATFORM_ORDER,
    TABLE1_ROWS,
    Availability,
    capability_matrix,
    render_capability_table,
    universal_rows,
)


@dataclass(frozen=True)
class Table1Result:
    """The matrix plus the derived headline facts."""

    rendered: str
    availability_counts: dict[str, int]
    universal_items: list[str]

    @property
    def only_universal_is_total_power(self) -> bool:
        """The paper's conclusion-section claim."""
        return self.universal_items == ["Total Power Consumption (Watts)/Total"]


def run() -> Table1Result:
    """Regenerate Table I from the simulators' declared capabilities."""
    matrix = capability_matrix()
    counts = {
        platform: sum(
            matrix[platform].cell(row) is Availability.AVAILABLE
            for row in TABLE1_ROWS
        )
        for platform in PLATFORM_ORDER
    }
    return Table1Result(
        rendered=render_capability_table(),
        availability_counts=counts,
        universal_items=[row.key for row in universal_rows()],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print("Table I: environmental data available per platform\n")
    print(result.rendered)
    print(f"\nAvailable counts: {result.availability_counts}")
    print(f"Universal data points: {result.universal_items}")
