"""Table I — the cross-platform sensor availability matrix."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capability import (
    PLATFORM_ORDER,
    TABLE1_ROWS,
    Availability,
    capability_matrix,
    render_capability_table,
    universal_rows,
)
from repro.exec.spec import ExperimentReport, ExperimentSpec


@dataclass(frozen=True)
class Table1Result:
    """The matrix plus the derived headline facts."""

    rendered: str
    availability_counts: dict[str, int]
    universal_items: list[str]

    @property
    def only_universal_is_total_power(self) -> bool:
        """The paper's conclusion-section claim."""
        return self.universal_items == ["Total Power Consumption (Watts)/Total"]


def run() -> Table1Result:
    """Regenerate Table I from the simulators' declared capabilities."""
    matrix = capability_matrix()
    counts = {
        platform: sum(
            matrix[platform].cell(row) is Availability.AVAILABLE
            for row in TABLE1_ROWS
        )
        for platform in PLATFORM_ORDER
    }
    return Table1Result(
        rendered=render_capability_table(),
        availability_counts=counts,
        universal_items=[row.key for row in universal_rows()],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print("Table I: environmental data available per platform\n")
    print(result.rendered)
    print(f"\nAvailable counts: {result.availability_counts}")
    print(f"Universal data points: {result.universal_items}")


def render(result: Table1Result) -> ExperimentReport:
    """Table I's paper-vs-measured block."""
    counts = result.availability_counts
    return ExperimentReport(
        "Table I", "Environmental data available per platform",
        "benchmarks/bench_table1.py",
        [
            ("universal data points", "total power consumption only",
             ", ".join(result.universal_items)),
            ("platform breadth order", "Phi > NVML > BG/Q > RAPL (implied)",
             # Ties break alphabetically so the row is stable across
             # runs regardless of dict insertion order.
             " > ".join(sorted(counts, key=lambda name: (-counts[name], name)))),
        ],
        notes=("The paper's checkmark glyphs did not survive the text "
               "extraction; the per-cell reconstruction follows the paper's "
               "prose plus the vendor documentation each simulator encodes."),
    )


SPEC = ExperimentSpec(
    exp_id="table1", title="Table I — environmental data per platform",
    module="repro.experiments.table1", config=None, seed=0,
    sources=("repro.core", "repro.bgq", "repro.rapl", "repro.nvml",
             "repro.xeonphi"),
    cost_hint_s=0.001,
)
