"""Figure 1 — MMPS power as seen from the bulk power supplies.

"Power as observed from the data collected at the bulk power supplies.
The idle period before and after the job is clearly observable."  The
environmental database polls every ~4 minutes; the job (MMPS) runs for
25 minutes in the middle of a 45-minute capture window, so a handful of
coarse samples show the 800 W idle shelf, the ~1700 W plateau, and the
return to idle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import (
    IdleVisibility,
    idle_visibility,
    series_from_readings,
)
from repro.bgq.machine import BgqMachine
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceSeries
from repro.workloads.mmps import MmpsWorkload

#: Experiment geometry.
JOB_START_S = 600.0
JOB_DURATION_S = 1500.0
WINDOW_S = 2700.0
BOARD = "R00-M0-N00"


@dataclass(frozen=True)
class Fig1Result:
    """The BPM input-power series plus the headline observations."""

    series: TraceSeries
    idle: IdleVisibility
    samples: int
    poll_interval_s: float


def run(seed: int = 0xF161, poll_interval_s: float = 240.0) -> Fig1Result:
    """Regenerate Figure 1's series from the environmental database."""
    machine = BgqMachine(racks=1, rng=RngRegistry(seed),
                         poll_interval_s=poll_interval_s)
    machine.run_job(MmpsWorkload(duration=JOB_DURATION_S), node_count=32,
                    t_start=JOB_START_S)
    machine.advance_to(WINDOW_S)
    readings = machine.envdb.range_readings("bpm", 0.0, WINDOW_S, BOARD)
    series = series_from_readings(readings, "input_power_w",
                                  name="bpm_input_power", units="W")
    return Fig1Result(
        series=series,
        idle=idle_visibility(series),
        samples=len(series),
        poll_interval_s=poll_interval_s,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print("Figure 1: MMPS power at the bulk power modules "
          f"({result.samples} samples at {result.poll_interval_s:.0f} s)")
    for t, w in result.series.to_rows():
        print(f"  t={t:7.1f} s  input={w:8.1f} W")
    print(f"idle shelf: {result.idle.idle_level:.0f} W, "
          f"job plateau: {result.idle.active_level:.0f} W, "
          f"idle visible: {result.idle.visible}")


@dataclass(frozen=True)
class Fig1Config:
    seed: int = 0xF161
    poll_interval_s: float = 240.0


def render(result: Fig1Result) -> ExperimentReport:
    """Figure 1's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 1", "MMPS power at the bulk power modules",
        "benchmarks/bench_fig1.py",
        [
            ("idle shelf", "~800 W, visible before/after job",
             f"{result.idle.idle_level:.0f} W, visible={result.idle.visible}"),
            ("job plateau", "~1600-1800 W", f"{result.idle.active_level:.0f} W"),
            ("samples", "handful at ~4-5 min spacing",
             f"{result.samples} at {result.poll_interval_s:.0f} s"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig1", title="Figure 1 — MMPS power at the bulk power modules",
    module="repro.experiments.fig1", config=Fig1Config(), seed=0xF161,
    sources=("repro.bgq", "repro.workloads", "repro.store", "repro.host"),
    cost_hint_s=0.13,
)
