"""EXPERIMENTS.md generator.

Runs every experiment, collects paper-vs-measured pairs, and renders
the markdown report the repository ships.  Regenerate with::

    python -m repro report > EXPERIMENTS.md
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import (
    fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
    overheads, rapl_overflow, table1, table2, table3,
)


@dataclass(frozen=True)
class ExperimentReport:
    """One experiment's paper-vs-measured block."""

    exp_id: str
    title: str
    bench: str
    rows: list[tuple[str, str, str]]  # (quantity, paper, measured)
    notes: str = ""


def _t1() -> ExperimentReport:
    result = table1.run()
    counts = result.availability_counts
    return ExperimentReport(
        "Table I", "Environmental data available per platform",
        "benchmarks/bench_table1.py",
        [
            ("universal data points", "total power consumption only",
             ", ".join(result.universal_items)),
            ("platform breadth order", "Phi > NVML > BG/Q > RAPL (implied)",
             " > ".join(sorted(counts, key=counts.get, reverse=True))),
        ],
        notes=("The paper's checkmark glyphs did not survive the text "
               "extraction; the per-cell reconstruction follows the paper's "
               "prose plus the vendor documentation each simulator encodes."),
    )


def _t2() -> ExperimentReport:
    result = table2.run()
    return ExperimentReport(
        "Table II", "Available RAPL sensors", "benchmarks/bench_table2.py",
        [
            ("domains", "PKG, PP0, PP1, DRAM",
             ", ".join(r[0] for r in result.rows)),
            ("counters live", "(implied)", str(all(result.live_counters.values()))),
        ],
    )


def _t3() -> ExperimentReport:
    result = table3.run()
    paper = {
        "Application Runtime": (202.78, 202.73, 202.74),
        "Time for Initialization": (0.0027, 0.0032, 0.0033),
        "Time for Finalize": (0.1510, 0.1550, 0.3347),
        "Time for Collection": (0.3871, 0.3871, 0.3871),
        "Total Time for MonEQ": (0.5409, 0.5455, 0.7251),
    }
    rows = []
    for name, paper_vals in paper.items():
        measured = result.row(name)
        rows.append((
            name,
            " / ".join(f"{v:.4f}" for v in paper_vals),
            " / ".join(f"{measured[n]:.4f}" for n in (32, 512, 1024)),
        ))
    rows.append(("total overhead @1K", "~0.4 % of runtime",
                 f"{result.reports[1024].percent_of_runtime:.2f} %"))
    return ExperimentReport(
        "Table III", "MonEQ time overhead on Mira (32/512/1024 nodes, s)",
        "benchmarks/bench_table3.py", rows,
    )


def _f1() -> ExperimentReport:
    result = fig1.run()
    return ExperimentReport(
        "Figure 1", "MMPS power at the bulk power modules",
        "benchmarks/bench_fig1.py",
        [
            ("idle shelf", "~800 W, visible before/after job",
             f"{result.idle.idle_level:.0f} W, visible={result.idle.visible}"),
            ("job plateau", "~1600-1800 W", f"{result.idle.active_level:.0f} W"),
            ("samples", "handful at ~4-5 min spacing",
             f"{result.samples} at {result.poll_interval_s:.0f} s"),
        ],
    )


def _f2() -> ExperimentReport:
    result = fig2.run()
    return ExperimentReport(
        "Figure 2", "MMPS via MonEQ: 7 domains at 560 ms",
        "benchmarks/bench_fig2.py",
        [
            ("domains", "7 (chip core largest)",
             f"{len(result.domains)}; largest = "
             f"{max(result.domains.names, key=lambda n: result.domains[n].mean())}"),
            ("total vs BPM", "matches in total power",
             f"{100 * result.agreement_with_bpm.relative_difference:.1f} % apart"),
            ("idle period", "no longer visible",
             f"visible={result.idle_samples_present}"),
            ("data volume", "many more points than BPM",
             f"{result.samples} samples"),
        ],
    )


def _f3() -> ExperimentReport:
    result = fig3.run()
    return ExperimentReport(
        "Figure 3", "RAPL package power of Gaussian elimination (100 ms)",
        "benchmarks/bench_fig3.py",
        [
            ("idle shelf", "visible both ends",
             f"head {result.idle_head_w:.1f} W / tail {result.idle_tail_w:.1f} W"),
            ("plateau", "~45-50 W", f"{result.plateau_w:.1f} W"),
            ("rhythmic drop", "~5 W", f"{result.drop_depth_w:.1f} W "
             f"every {result.drop_period_s:.1f} s"),
            ("tiny spikes", "between drops", f"+{result.spike_height_w:.1f} W"),
        ],
    )


def _f4() -> ExperimentReport:
    result = fig4.run()
    return ExperimentReport(
        "Figure 4", "K20 NOOP power ramp (100 ms)", "benchmarks/bench_fig4.py",
        [
            ("start -> level", "~44-46 -> ~55 W",
             f"{result.start_w:.1f} -> {result.level_w:.1f} W"),
            ("ramp duration", "~5 s", f"{result.time_to_level_s:.1f} s"),
        ],
    )


def _f5() -> ExperimentReport:
    result = fig5.run()
    return ExperimentReport(
        "Figure 5", "K20 vector-add power + temperature",
        "benchmarks/bench_fig5.py",
        [
            ("first ~10 s", "GPU unloaded (host datagen)",
             f"{result.datagen_mean_w:.1f} W"),
            ("compute plateau", "~125-150 W", f"{result.compute_mean_w:.1f} W"),
            ("temperature", "steady climb ~40 -> ~65 C",
             f"{result.temp_start_c:.1f} -> {result.temp_end_c:.1f} C, "
             f"{100 * result.temp_monotone_fraction:.0f} % rising"),
        ],
    )


def _f6() -> ExperimentReport:
    result = fig6.run()
    return ExperimentReport(
        "Figure 6", "Phi control-panel software architecture",
        "benchmarks/bench_fig6.py",
        [
            ("paths", "in-band, out-of-band, MICRAS all present",
             f"reachable: {result.path_exists}"),
            ("SCIF symmetry", "same interfaces host and card",
             str(result.symmetric_scif)),
            ("per-query costs", "(measured elsewhere in paper)",
             ", ".join(f"{k}={1000 * v:.2f} ms"
                       for k, v in result.path_costs.items())),
        ],
        notes="A diagram has no data series; the reproduction checks the "
              "graph structure and path costs instead.",
    )


def _f7() -> ExperimentReport:
    result = fig7.run()
    return ExperimentReport(
        "Figure 7", "Phi power boxplot: SysMgmt API vs daemon",
        "benchmarks/bench_fig7.py",
        [
            ("API median", "~115.5-117 W band", f"{result.api_box.median:.2f} W"),
            ("daemon median", "~113-115 W band", f"{result.daemon_box.median:.2f} W"),
            ("difference", "slight but statistically significant",
             f"{result.ttest.mean_difference:+.2f} W, p={result.ttest.pvalue:.1e}"),
        ],
    )


def _f8() -> ExperimentReport:
    result = fig8.run()
    return ExperimentReport(
        "Figure 8", "Sum power, Gaussian elimination on 128 Stampede Phis",
        "benchmarks/bench_fig8.py",
        [
            ("datagen phase", "~first 100 s, low",
             f"{result.datagen_mean_w / 1e3:.1f} kW"),
            ("compute phase", "rises toward ~25 kW",
             f"{result.compute_mean_w / 1e3:.1f} kW"),
            ("transition", "visible where generation stops",
             f"at {result.compute_start_s:.0f} s, "
             f"{result.compute_mean_w / result.datagen_mean_w:.2f}x jump"),
        ],
    )


def _oh() -> ExperimentReport:
    result = overheads.run()
    paper_ms = {"bgq-emon": 1.10, "rapl-msr": 0.03, "nvml": 1.3,
                "phi-sysmgmt": 14.2, "phi-micras": 0.04}
    rows = [
        (result.costs[key].mechanism, f"{paper_ms[key]} ms",
         f"{1000 * result.costs[key].per_query_s:.3f} ms")
        for key in paper_ms
    ]
    rows.append(("duty overheads", "BG/Q 0.19 %, NVML 1.25 %, Phi API ~14 %",
                 f"BG/Q {result.costs['bgq-emon'].overhead_percent:.2f} %, "
                 f"NVML {result.costs['nvml'].overhead_percent:.2f} %, "
                 f"Phi API {result.costs['phi-sysmgmt'].overhead_percent:.1f} %"))
    return ExperimentReport(
        "§II text", "Per-query collection overheads",
        "benchmarks/bench_overheads.py", rows,
    )


def _ro() -> ExperimentReport:
    result = rapl_overflow.run()
    bad = [p for p in result.points if p.interval_s >= 70.0]
    return ExperimentReport(
        "§II-B text", "RAPL counter overflow past ~60 s sampling",
        "benchmarks/bench_rapl_overflow.py",
        [
            ("wrap period @1 kW", "'about 60 seconds'",
             f"{result.wrap_period_s:.1f} s"),
            ("<= 65 s sampling", "accurate", "max error "
             f"{max(p.relative_error for p in result.points if p.interval_s <= 65.0):.2%}"),
            (">= 70 s sampling", "erroneous data",
             "errors " + ", ".join(f"{p.relative_error:.0%}" for p in bad)),
        ],
    )


ALL_REPORTS = [_t1, _t2, _t3, _f1, _f2, _f3, _f4, _f5, _f6, _f7, _f8, _oh, _ro]


def generate_markdown() -> str:
    """Run everything; render the EXPERIMENTS.md body."""
    blocks = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `python -m repro report`.  Absolute watts come from",
        "behavioural simulators, not the authors' testbeds; the claims under",
        "test are the *shapes*: who wins, by what rough factor, and where",
        "the crossovers fall.  Each block names the benchmark that",
        "regenerates it (`pytest <bench> --benchmark-only -s`).",
        "",
    ]
    for factory in ALL_REPORTS:
        report = factory()
        blocks.append(f"## {report.exp_id} — {report.title}")
        blocks.append("")
        blocks.append(f"Bench: `{report.bench}`")
        blocks.append("")
        blocks.append("| quantity | paper | measured |")
        blocks.append("|---|---|---|")
        for quantity, paper, measured in report.rows:
            blocks.append(f"| {quantity} | {paper} | {measured} |")
        if report.notes:
            blocks.append("")
            blocks.append(f"*{report.notes}*")
        blocks.append("")
    blocks.append("## Modeling assumptions flagged as such")
    blocks.append("")
    blocks.append("- perf_event RAPL query cost (0.10 ms) is modeled, not from the "
                  "paper — the authors lacked a >=3.14 kernel; only the *ordering* "
                  "(slower than raw MSR) is asserted.")
    blocks.append("- The environmental-database ingest ceiling is sized so a full "
                  "Mira saturates below 60 s polling and fits at ~4 minutes, "
                  "matching the paper's capacity argument qualitatively.")
    blocks.append("- MonEQ finalize I/O contends past 16 concurrent agent files; "
                  "this reproduces Table III's finalize jump at 1024 nodes.")
    blocks.append("")
    return "\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI
    print(generate_markdown())
