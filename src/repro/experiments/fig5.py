"""Figure 5 — vector-add power and temperature on a K20.

"Power curve shows same gradual increase in first few seconds as sleep
workload with rapid increase after data generation until workload
finishes.  Temperature shows steady increase."  Host-side datagen
occupies the first ~10 s (GPU near idle); the compute plateau sits at
~125-150 W; die temperature climbs from ~40 C toward ~65 C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moneq.backends import NvmlBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.trace import TraceSeries
from repro.testbeds import gpu_node
from repro.workloads.vectoradd import VectorAddWorkload

CAPTURE_S = 100.0


@dataclass(frozen=True)
class Fig5Result:
    """Power + temperature traces and phase metrics."""

    power: TraceSeries
    temperature: TraceSeries
    datagen_mean_w: float
    compute_mean_w: float
    temp_start_c: float
    temp_end_c: float
    temp_monotone_fraction: float


def run(seed: int = 0xF165, interval_s: float = 0.100) -> Fig5Result:
    """Regenerate Figure 5's two series."""
    node, gpu, _ = gpu_node(seed=seed)
    workload = VectorAddWorkload(datagen_seconds=10.0, compute_seconds=85.0,
                                 transfer_seconds=3.0)
    gpu.board.schedule(workload, t_start=0.0)
    session = MoneqSession(
        [NvmlBackend(gpu)], node.events,
        config=MoneqConfig(polling_interval_s=interval_s), node_count=1,
        vfs=node.vfs,
    )
    node.events.run_until(session.t_start + CAPTURE_S)
    result = session.finalize()
    power = result.trace("board_w")
    temperature = result.trace("die_temp_c")

    datagen = power.between(1.0, 9.0)
    compute = power.between(20.0, 90.0)
    # Smoothed monotonicity of the temperature climb during compute.
    temps = temperature.between(15.0, 95.0).values
    diffs = np.diff(np.convolve(temps, np.ones(9) / 9, mode="valid"))
    monotone_fraction = float((diffs > 0).mean()) if len(diffs) else 0.0
    return Fig5Result(
        power=power,
        temperature=temperature,
        datagen_mean_w=datagen.mean(),
        compute_mean_w=compute.mean(),
        temp_start_c=float(temperature.values[0]),
        temp_end_c=float(temperature.values[-1]),
        temp_monotone_fraction=monotone_fraction,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.analysis.figures import ascii_chart

    result = run()
    print(ascii_chart(result.power, width=70, height=12,
                      title="Figure 5: K20 vector-add board power (W)"))
    print()
    print(ascii_chart(result.temperature, width=70, height=8,
                      title="Figure 5: die temperature (C)"))
    print(f"\nFigure 5: K20 vector-add, {len(result.power)} samples at 100 ms")
    print(f"  datagen power : {result.datagen_mean_w:.1f} W (GPU idle-ish)")
    print(f"  compute power : {result.compute_mean_w:.1f} W (paper: ~125-150 W)")
    print(f"  temperature   : {result.temp_start_c:.1f} -> "
          f"{result.temp_end_c:.1f} C (paper: ~40 -> ~65 C)")
    print(f"  steady climb  : {100 * result.temp_monotone_fraction:.0f}% of "
          "compute-phase steps rising")


@dataclass(frozen=True)
class Fig5Config:
    seed: int = 0xF165
    interval_s: float = 0.100


def render(result: Fig5Result) -> ExperimentReport:
    """Figure 5's paper-vs-measured block."""
    return ExperimentReport(
        "Figure 5", "K20 vector-add power + temperature",
        "benchmarks/bench_fig5.py",
        [
            ("first ~10 s", "GPU unloaded (host datagen)",
             f"{result.datagen_mean_w:.1f} W"),
            ("compute plateau", "~125-150 W", f"{result.compute_mean_w:.1f} W"),
            ("temperature", "steady climb ~40 -> ~65 C",
             f"{result.temp_start_c:.1f} -> {result.temp_end_c:.1f} C, "
             f"{100 * result.temp_monotone_fraction:.0f} % rising"),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="fig5", title="Figure 5 — K20 vector-add power + temperature",
    module="repro.experiments.fig5", config=Fig5Config(), seed=0xF165,
    sources=("repro.core", "repro.nvml", "repro.testbeds",
             "repro.workloads", "repro.host"),
    cost_hint_s=0.006,
)
