"""RAPL counter-overflow demonstration (§II-B text).

"These registers can 'overfill' if they are not read frequently enough,
so a sampling of more than about 60 seconds will result in erroneous
data."  The 32-bit counter in 2^-16 J units wraps after 65,536 J —
65.5 s at 1 kW.  The experiment sweeps the sampling interval and
reports the decoded-vs-true energy error on a synthetic 1 kW load,
showing the cliff at the wrap period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.sensor import CounterSensor
from repro.sim.signals import ConstantSignal
from repro.units import RAPL_ENERGY_UNIT_J

#: The synthetic load: a kilowatt makes the wrap land at the paper's
#: "about 60 seconds".
LOAD_W = 1000.0
INTERVALS_S = (0.06, 1.0, 10.0, 30.0, 60.0, 65.0, 70.0, 120.0, 300.0)


@dataclass(frozen=True)
class OverflowPoint:
    """One sampling interval's decoded accuracy."""

    interval_s: float
    true_j: float
    decoded_j: float

    @property
    def relative_error(self) -> float:
        return abs(self.decoded_j - self.true_j) / self.true_j


@dataclass(frozen=True)
class OverflowResult:
    points: list[OverflowPoint]
    wrap_period_s: float

    def max_safe_interval(self, tolerance: float = 0.01) -> float:
        """Largest swept interval still within tolerance."""
        safe = [p.interval_s for p in self.points if p.relative_error <= tolerance]
        return max(safe) if safe else 0.0


def run(intervals: tuple[float, ...] = INTERVALS_S) -> OverflowResult:
    """Sweep sampling intervals over a constant 1 kW load."""
    counter = CounterSensor(
        ConstantSignal(LOAD_W), unit=RAPL_ENERGY_UNIT_J,
        width_bits=32, update_interval=1e-3, dt=1e-2,
    )
    points = []
    for interval in intervals:
        # Integrate over ten intervals via consecutive decoded deltas.
        decoded = sum(
            counter.delta(k * interval, (k + 1) * interval) for k in range(10)
        )
        true = LOAD_W * interval * 10
        points.append(OverflowPoint(interval, true, decoded))
    return OverflowResult(points=points,
                          wrap_period_s=counter.wrap_period(LOAD_W))


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    rows = [[p.interval_s, p.true_j, p.decoded_j, 100 * p.relative_error]
            for p in result.points]
    print(format_table(
        ["interval (s)", "true (J)", "decoded (J)", "error (%)"], rows,
        title=f"RAPL 32-bit counter at {LOAD_W:.0f} W "
              f"(wrap period {result.wrap_period_s:.1f} s)",
        float_format="{:.2f}",
    ))
    print(f"\nmax safe interval in sweep: {result.max_safe_interval():.0f} s "
          "(paper: 'more than about 60 seconds ... erroneous')")


@dataclass(frozen=True)
class OverflowConfig:
    intervals: tuple[float, ...] = INTERVALS_S


def render(result: OverflowResult) -> ExperimentReport:
    """The RAPL-overflow block (§II-B text)."""
    bad = [p for p in result.points if p.interval_s >= 70.0]
    return ExperimentReport(
        "§II-B text", "RAPL counter overflow past ~60 s sampling",
        "benchmarks/bench_rapl_overflow.py",
        [
            ("wrap period @1 kW", "'about 60 seconds'",
             f"{result.wrap_period_s:.1f} s"),
            ("<= 65 s sampling", "accurate", "max error "
             f"{max(p.relative_error for p in result.points if p.interval_s <= 65.0):.2%}"),
            (">= 70 s sampling", "erroneous data",
             "errors " + ", ".join(f"{p.relative_error:.0%}" for p in bad)),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="rapl_overflow", title="§II-B — RAPL counter overflow",
    module="repro.experiments.rapl_overflow", config=OverflowConfig(), seed=0,
    sources=("repro.rapl", "repro.units"),
    cost_hint_s=0.02,
)
