"""Table II — the list of available RAPL sensors (domains)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.rapl.domains import RAPL_DOMAIN_TABLE
from repro.rapl.msr import ENERGY_STATUS_MSR
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.rapl.domains import RaplDomain
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class Table2Result:
    """Table II rows plus a liveness check of each domain's MSR."""

    rows: list[tuple[str, str]]
    msr_addresses: dict[str, int]
    live_counters: dict[str, bool]


def run() -> Table2Result:
    """Regenerate Table II and verify each domain's energy-status MSR
    actually responds on a simulated package."""
    package = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(1))
    rows = [(info.long_name, info.description) for info in RAPL_DOMAIN_TABLE]
    addresses = {d.value: ENERGY_STATUS_MSR[d] for d in RaplDomain}
    live = {}
    for domain in RaplDomain:
        raw0 = package.energy_raw(domain, 1.0)
        raw1 = package.energy_raw(domain, 5.0)
        # PKG/PP0/DRAM tick even at idle; PP1 legitimately sits at 0 on
        # servers but the register still answers.
        live[domain.value] = raw1 >= raw0
    return Table2Result(rows=rows, msr_addresses=addresses, live_counters=live)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(format_table(
        ["Domain", "Description"], result.rows,
        title="Table II: available RAPL sensors",
    ))
    print(f"\nEnergy-status MSRs: "
          f"{ {k: hex(v) for k, v in result.msr_addresses.items()} }")
    print(f"Counters responding: {result.live_counters}")


def render(result: Table2Result) -> ExperimentReport:
    """Table II's paper-vs-measured block."""
    return ExperimentReport(
        "Table II", "Available RAPL sensors", "benchmarks/bench_table2.py",
        [
            ("domains", "PKG, PP0, PP1, DRAM",
             ", ".join(r[0] for r in result.rows)),
            ("counters live", "(implied)", str(all(result.live_counters.values()))),
        ],
    )


SPEC = ExperimentSpec(
    exp_id="table2", title="Table II — available RAPL sensors",
    module="repro.experiments.table2", config=None, seed=0,
    sources=("repro.rapl", "repro.host"),
    cost_hint_s=0.003,
)
