"""Table III — MonEQ time overhead on Mira at 32/512/1024 nodes.

The toy application runs for exactly the same time regardless of scale;
MonEQ profiles it through the EMON backend at the BG/Q minimum interval
(560 ms).  One agent covers one node card (32 nodes), so the three
scales use 1, 16 and 32 agents.  Expected shape (paper values):

======================  ========  =========  =========
row                     32 nodes  512 nodes  1024 nodes
======================  ========  =========  =========
Application Runtime      202.78    202.73     202.74
Time for Initialization  0.0027    0.0032     0.0033
Time for Finalize        0.1510    0.1550     0.3347
Time for Collection      0.3871    0.3871     0.3871
Total Time for MonEQ     0.5409    0.5455     0.7251
======================  ========  =========  =========

Init and collection are scale-(in)sensitive exactly as the paper
argues; finalize jumps once the agent-file count exceeds the I/O
servers.  Total overhead stays ~0.4 % at the 1K scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.overhead import OverheadReport
from repro.core.moneq.session import MoneqSession
from repro.sim.rng import RngRegistry
from repro.workloads.toy import TABLE3_RUNTIME_S, FixedRuntimeToyWorkload

#: The paper's three scales.
SCALES = (32, 512, 1024)


@dataclass(frozen=True)
class Table3Result:
    """One overhead report per scale."""

    reports: dict[int, OverheadReport]

    def row(self, name: str) -> dict[int, float]:
        return {scale: report.as_table_row()[name]
                for scale, report in self.reports.items()}


def run_scale(node_count: int, seed: int = 0x7AB1E3) -> OverheadReport:
    """Profile the toy app on ``node_count`` nodes of a BG/Q rack."""
    machine = BgqMachine(racks=1, rng=RngRegistry(seed), start_poller=False)
    boards = machine.run_job(FixedRuntimeToyWorkload(), node_count, t_start=0.0)
    backends = [BgqEmonBackend(machine.emon(b.location)) for b in boards]
    session = MoneqSession(
        backends, machine.events,
        config=MoneqConfig(polling_interval_s=0.560),
        node_count=node_count,
    )
    machine.events.run_until(session.t_start + TABLE3_RUNTIME_S)
    return session.finalize().overhead


def run(scales: tuple[int, ...] = SCALES) -> Table3Result:
    """Regenerate Table III."""
    return Table3Result(reports={n: run_scale(n) for n in scales})


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    names = ["Application Runtime", "Time for Initialization",
             "Time for Finalize", "Time for Collection", "Total Time for MonEQ"]
    rows = [[name] + [result.reports[n].as_table_row()[name] for n in SCALES]
            for name in names]
    print(format_table(
        ["(seconds)"] + [f"{n} Nodes" for n in SCALES], rows,
        title="Table III: time overhead for MonEQ on Mira",
    ))
    pct = result.reports[1024].percent_of_runtime
    print(f"\nTotal overhead at 1024 nodes: {pct:.2f}% of runtime "
          f"(paper: ~0.4%)")
