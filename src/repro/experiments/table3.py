"""Table III — MonEQ time overhead on Mira at 32/512/1024 nodes.

The toy application runs for exactly the same time regardless of scale;
MonEQ profiles it through the EMON backend at the BG/Q minimum interval
(560 ms).  One agent covers one node card (32 nodes), so the three
scales use 1, 16 and 32 agents.  Expected shape (paper values):

======================  ========  =========  =========
row                     32 nodes  512 nodes  1024 nodes
======================  ========  =========  =========
Application Runtime      202.78    202.73     202.74
Time for Initialization  0.0027    0.0032     0.0033
Time for Finalize        0.1510    0.1550     0.3347
Time for Collection      0.3871    0.3871     0.3871
Total Time for MonEQ     0.5409    0.5455     0.7251
======================  ========  =========  =========

Init and collection are scale-(in)sensitive exactly as the paper
argues; finalize jumps once the agent-file count exceeds the I/O
servers.  Total overhead stays ~0.4 % at the 1K scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.overhead import OverheadReport
from repro.core.moneq.session import MoneqSession
from repro.exec.spec import ExperimentReport, ExperimentSpec
from repro.sim.rng import RngRegistry
from repro.workloads.toy import TABLE3_RUNTIME_S, FixedRuntimeToyWorkload

#: The paper's three scales.
SCALES = (32, 512, 1024)


@dataclass(frozen=True)
class Table3Result:
    """One overhead report per scale."""

    reports: dict[int, OverheadReport]

    def row(self, name: str) -> dict[int, float]:
        return {scale: report.as_table_row()[name]
                for scale, report in self.reports.items()}


def run_scale(node_count: int, seed: int = 0x7AB1E3) -> OverheadReport:
    """Profile the toy app on ``node_count`` nodes of a BG/Q rack."""
    machine = BgqMachine(racks=1, rng=RngRegistry(seed), start_poller=False)
    boards = machine.run_job(FixedRuntimeToyWorkload(), node_count, t_start=0.0)
    backends = [BgqEmonBackend(machine.emon(b.location)) for b in boards]
    session = MoneqSession(
        backends, machine.events,
        config=MoneqConfig(polling_interval_s=0.560),
        node_count=node_count,
    )
    machine.events.run_until(session.t_start + TABLE3_RUNTIME_S)
    return session.finalize().overhead


def run(scales: tuple[int, ...] = SCALES) -> Table3Result:
    """Regenerate Table III."""
    return Table3Result(reports={n: run_scale(n) for n in scales})


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    names = ["Application Runtime", "Time for Initialization",
             "Time for Finalize", "Time for Collection", "Total Time for MonEQ"]
    rows = [[name] + [result.reports[n].as_table_row()[name] for n in SCALES]
            for name in names]
    print(format_table(
        ["(seconds)"] + [f"{n} Nodes" for n in SCALES], rows,
        title="Table III: time overhead for MonEQ on Mira",
    ))
    pct = result.reports[1024].percent_of_runtime
    print(f"\nTotal overhead at 1024 nodes: {pct:.2f}% of runtime "
          f"(paper: ~0.4%)")


@dataclass(frozen=True)
class Table3Config:
    """Spec config; one part per node scale shards the heavy run."""

    seed: int = 0x7AB1E3


def run_part(part: str, config: Table3Config) -> dict:
    """One scale's overhead report, as a cacheable payload."""
    report = run_scale(int(part), seed=config.seed)
    return {
        "rows": report.as_table_row(),
        "percent_of_runtime": report.percent_of_runtime,
    }


def render_block(parts: dict[str, dict]) -> ExperimentReport:
    """Merge the per-scale parts into Table III's block."""
    paper = {
        "Application Runtime": (202.78, 202.73, 202.74),
        "Time for Initialization": (0.0027, 0.0032, 0.0033),
        "Time for Finalize": (0.1510, 0.1550, 0.3347),
        "Time for Collection": (0.3871, 0.3871, 0.3871),
        "Total Time for MonEQ": (0.5409, 0.5455, 0.7251),
    }
    rows = []
    for name, paper_vals in paper.items():
        rows.append((
            name,
            " / ".join(f"{v:.4f}" for v in paper_vals),
            " / ".join(f"{parts[str(n)]['rows'][name]:.4f}" for n in SCALES),
        ))
    rows.append(("total overhead @1K", "~0.4 % of runtime",
                 f"{parts['1024']['percent_of_runtime']:.2f} %"))
    return ExperimentReport(
        "Table III", "MonEQ time overhead on Mira (32/512/1024 nodes, s)",
        "benchmarks/bench_table3.py", rows,
    )


SPEC = ExperimentSpec(
    exp_id="table3", title="Table III — MonEQ time overhead on Mira",
    module="repro.experiments.table3", config=Table3Config(), seed=0x7AB1E3,
    sources=("repro.bgq", "repro.core", "repro.workloads", "repro.store",
             "repro.host"),
    parts=("1024", "512", "32"),
    cost_hint_s=0.16,
)
