"""Ready-made SPMD programs.

Executable (simulated) analogues of the applications the paper
profiles: the ALCF MMPS benchmark as a real message-exchange program
whose achieved rate comes out of the runtime rather than a formula, a
halo-exchange compute loop with the sync structure that produces the
Figure 3 rhythm, and a bulk-synchronous reduction kernel.  Each returns
a result object with figures of merit the tests can check against the
closed-form interconnect model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.interconnect import BGQ_TORUS, Interconnect
from repro.runtime.launcher import Launcher, RankResult
from repro.runtime.ops import Allreduce, Barrier, Compute, Recv, Send


@dataclass(frozen=True)
class MmpsResult:
    """Outcome of an MMPS run."""

    ranks: int
    messages_per_rank: int
    message_bytes: int
    elapsed_s: float
    achieved_rate_per_rank: float
    model_rate_per_rank: float

    @property
    def model_agreement(self) -> float:
        """achieved / closed-form postal-model rate."""
        return self.achieved_rate_per_rank / self.model_rate_per_rank


def run_mmps(ranks: int = 2, messages_per_rank: int = 1000,
             message_bytes: int = 32,
             interconnect: Interconnect = BGQ_TORUS,
             scheduler: str = "auto") -> MmpsResult:
    """The messaging-rate benchmark: every rank streams messages to its
    XOR-partner, then drains its inbox; the achieved per-rank rate is
    messages / elapsed."""
    if ranks < 2 or ranks % 2:
        raise ConfigError(f"MMPS pairs ranks; need an even count >= 2, got {ranks}")
    if messages_per_rank <= 0:
        raise ConfigError("messages_per_rank must be positive")

    def program(ctx):
        peer = ctx.rank ^ 1
        yield Barrier()
        for i in range(messages_per_rank):
            yield Send(dest=peer, payload=None, nbytes=message_bytes, tag=i)
        for i in range(messages_per_rank):
            yield Recv(source=peer, tag=i)
        yield Barrier()
        return ctx.rank

    results = Launcher(program, size=ranks, interconnect=interconnect,
                       scheduler=scheduler).run()
    elapsed = max(r.finish_time for r in results)
    achieved = messages_per_rank / elapsed
    return MmpsResult(
        ranks=ranks,
        messages_per_rank=messages_per_rank,
        message_bytes=message_bytes,
        elapsed_s=elapsed,
        achieved_rate_per_rank=achieved,
        model_rate_per_rank=interconnect.messaging_rate(message_bytes),
    )


@dataclass(frozen=True)
class HaloExchangeResult:
    """Outcome of the halo-exchange loop."""

    ranks: int
    iterations: int
    elapsed_s: float
    compute_fraction: float
    per_rank: list[RankResult]


def run_halo_exchange(ranks: int = 4, iterations: int = 20,
                      compute_s: float = 0.25, halo_bytes: int = 64 * 1024,
                      interconnect: Interconnect = BGQ_TORUS) -> HaloExchangeResult:
    """1-D ring halo exchange: compute, trade boundaries with both
    neighbours, repeat.  The periodic communication stall is the program
    structure behind Figure 3's rhythmic utilization drop."""
    if ranks < 2:
        raise ConfigError("halo exchange needs >= 2 ranks")
    if iterations <= 0 or compute_s <= 0.0:
        raise ConfigError("iterations and compute time must be positive")

    def program(ctx):
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        for it in range(iterations):
            yield Compute(compute_s)
            yield Send(dest=right, payload=None, nbytes=halo_bytes, tag=2 * it)
            yield Send(dest=left, payload=None, nbytes=halo_bytes, tag=2 * it + 1)
            yield Recv(source=left, tag=2 * it)
            yield Recv(source=right, tag=2 * it + 1)
        yield Barrier()
        return iterations

    results = Launcher(program, size=ranks, interconnect=interconnect).run()
    elapsed = max(r.finish_time for r in results)
    return HaloExchangeResult(
        ranks=ranks,
        iterations=iterations,
        elapsed_s=elapsed,
        compute_fraction=(iterations * compute_s) / elapsed,
        per_rank=results,
    )


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of the bulk-synchronous reduction kernel."""

    ranks: int
    rounds: int
    elapsed_s: float
    final_value: float


def run_reduction(ranks: int = 8, rounds: int = 10, compute_s: float = 0.1,
                  interconnect: Interconnect = BGQ_TORUS) -> ReductionResult:
    """Iterated compute + allreduce (the residual-norm pattern of every
    iterative solver)."""
    if ranks < 1 or rounds < 1:
        raise ConfigError("ranks and rounds must be positive")

    def program(ctx):
        value = float(ctx.rank + 1)
        for _ in range(rounds):
            yield Compute(compute_s)
            value = yield Allreduce(payload=value / ctx.size)
        return value

    results = Launcher(program, size=ranks, interconnect=interconnect).run()
    return ReductionResult(
        ranks=ranks,
        rounds=rounds,
        elapsed_s=max(r.finish_time for r in results),
        final_value=float(results[0].value),
    )
