"""MPI-like SPMD runtime.

MonEQ is an MPI profiling library ("status = MPI_Init(&argc, &argv);
... status = MonEQ_Initialize();"), so the reproduction needs an SPMD
substrate to host it.  Rank programs are Python generators that yield
communication ops (:class:`Send`, :class:`Recv`, :class:`Barrier`,
collectives, :class:`Compute`); the :class:`Launcher` schedules them
deterministically over a latency/bandwidth interconnect model and
detects deadlock.
"""

from repro.runtime.interconnect import Interconnect, BGQ_TORUS, CLUSTER_FDR_IB
from repro.runtime.ops import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Recv,
    Reduce,
    Scatter,
    Send,
)
from repro.runtime.launcher import Launcher, RankContext, RankResult

__all__ = [
    "Interconnect",
    "BGQ_TORUS",
    "CLUSTER_FDR_IB",
    "Send",
    "Recv",
    "Barrier",
    "Bcast",
    "Gather",
    "Scatter",
    "Allreduce",
    "Reduce",
    "Compute",
    "ANY_SOURCE",
    "Launcher",
    "RankContext",
    "RankResult",
]
