"""Communication ops a rank generator can yield.

Payload sizes are estimated via pickling when not given explicitly, so
the postal cost model sees realistic byte counts without the runtime
shipping real buffers around.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RuntimeSimError

#: Wildcard source for Recv.
ANY_SOURCE = -1


def payload_nbytes(payload: Any, declared: int | None) -> int:
    """Size used by the cost model: declared wins, else pickled size."""
    if declared is not None:
        if declared < 0:
            raise RuntimeSimError(f"declared size must be non-negative, got {declared}")
        return declared
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable sentinel objects still need a size
        return 64


@dataclass(frozen=True)
class Send:
    """Non-blocking eager send to ``dest`` with a matching ``tag``."""

    dest: int
    payload: Any = None
    tag: int = 0
    nbytes: int | None = None


@dataclass(frozen=True)
class Recv:
    """Blocking receive from ``source`` (or :data:`ANY_SOURCE`)."""

    source: int = ANY_SOURCE
    tag: int = 0


@dataclass(frozen=True)
class Barrier:
    """All ranks synchronize."""


@dataclass(frozen=True)
class Bcast:
    """Root's payload is delivered to every rank (yield returns it)."""

    root: int = 0
    payload: Any = None
    nbytes: int | None = None


@dataclass(frozen=True)
class Gather:
    """Every rank contributes; root's yield returns the rank-ordered
    list, others get None."""

    root: int = 0
    payload: Any = None
    nbytes: int | None = None


@dataclass(frozen=True)
class Scatter:
    """Root's rank-indexed sequence is split: rank i's yield returns
    ``payload[i]``.  Non-root ranks pass ``payload=None``."""

    root: int = 0
    payload: Any = None
    nbytes: int | None = None


@dataclass(frozen=True)
class Allreduce:
    """Elementwise reduction across ranks; every rank gets the result."""

    payload: Any = None
    op: Callable[[Any, Any], Any] = field(default=lambda a, b: a + b)
    nbytes: int | None = None


@dataclass(frozen=True)
class Reduce:
    """Elementwise reduction delivered to ``root`` only (others get
    None from the yield)."""

    root: int = 0
    payload: Any = None
    op: Callable[[Any, Any], Any] = field(default=lambda a, b: a + b)
    nbytes: int | None = None


@dataclass(frozen=True)
class Compute:
    """Advance this rank's local clock by ``seconds`` of computation."""

    seconds: float

    def __post_init__(self):
        if self.seconds < 0.0:
            raise RuntimeSimError(f"compute time must be non-negative, got {self.seconds}")
