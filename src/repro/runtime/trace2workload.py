"""Trace-driven workloads: from SPMD execution to device load.

Runs an SPMD program under the launcher with busy-recording on, buckets
the per-rank busy spans into a utilization time series, and wraps it as
a :class:`~repro.workloads.base.Workload` any device model can host.
This is the bridge that lets a *program's actual communication
structure* produce the power signature the paper measures — e.g. the
halo-exchange sync stalls become the Figure 3-style rhythmic dips,
derived rather than hand-modeled.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.runtime.interconnect import BGQ_TORUS, Interconnect
from repro.runtime.launcher import Launcher, RankContext, RankResult
from repro.sim.signals import PiecewiseConstantSignal
from repro.workloads.base import Workload


def busy_fraction_series(results: list[RankResult], bucket_s: float,
                         duration: float | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """(bucket start times, mean busy fraction across ranks).

    Each rank contributes the overlap of its busy spans with each
    bucket; the series is the rank-averaged fraction in [0, 1].
    """
    if bucket_s <= 0.0:
        raise ConfigError(f"bucket size must be positive, got {bucket_s}")
    if not results:
        raise ConfigError("no rank results")
    horizon = duration if duration is not None else max(r.finish_time for r in results)
    if horizon <= 0.0:
        raise ConfigError("program finished at t=0; nothing to bucket")
    n_buckets = int(np.ceil(horizon / bucket_s))
    edges = np.arange(n_buckets + 1) * bucket_s
    busy = np.zeros(n_buckets)
    for result in results:
        for t0, t1 in result.busy_spans:
            first = int(t0 // bucket_s)
            last = min(int(np.ceil(t1 / bucket_s)), n_buckets)
            for bucket in range(first, last):
                lo = max(t0, edges[bucket])
                hi = min(t1, edges[bucket + 1])
                if hi > lo:
                    busy[bucket] += hi - lo
    fraction = busy / (bucket_s * len(results))
    return edges[:-1], np.clip(fraction, 0.0, 1.0)


def workload_from_program(
    rank_fn: Callable[[RankContext], object],
    size: int,
    component: str,
    name: str = "traced-program",
    bucket_s: float = 0.05,
    peak_utilization: float = 1.0,
    interconnect: Interconnect = BGQ_TORUS,
    extra_components: dict[str, float] | None = None,
) -> tuple[Workload, list[RankResult]]:
    """Execute ``rank_fn`` and return (workload, rank results).

    The workload's ``component`` utilization is the measured busy
    fraction scaled by ``peak_utilization``; ``extra_components`` map
    additional components to fixed multiples of the same series (e.g.
    DRAM at 0.5x the core activity).
    """
    if not 0.0 < peak_utilization <= 1.0:
        raise ConfigError(f"peak_utilization must be in (0,1], got {peak_utilization}")
    launcher = Launcher(rank_fn, size=size, interconnect=interconnect,
                        record_busy=True)
    results = launcher.run()
    starts, fraction = busy_fraction_series(results, bucket_s)
    duration = max(r.finish_time for r in results)
    breakpoints = list(starts[1:]) + [duration]
    signals = {}
    base_levels = [0.0] + list(peak_utilization * fraction) + [0.0]
    signals[component] = PiecewiseConstantSignal([0.0] + breakpoints, base_levels)
    for extra, scale in (extra_components or {}).items():
        levels = [0.0] + list(np.clip(scale * peak_utilization * fraction, 0, 1)) + [0.0]
        signals[extra] = PiecewiseConstantSignal([0.0] + breakpoints, levels)
    workload = Workload(
        name=name, duration=duration, signals=signals,
        metadata={"ranks": size, "bucket_s": bucket_s,
                  "mean_busy_fraction": float(fraction.mean())},
    )
    return workload, results
