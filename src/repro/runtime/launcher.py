"""The SPMD launcher: deterministic cooperative scheduling of rank
generators over the interconnect cost model.

Semantics:

* sends are eager and non-blocking (buffered), costing the sender its
  injection overhead; the message becomes receivable at
  ``send_time + ptp_time(nbytes)``;
* receives block until a matching message exists; the receiver's clock
  advances to at least the message's arrival time;
* collectives are synchronizing: participants leave at
  ``max(entry times) + collective_time``;
* scheduling is by smallest (local_time, rank), so runs are fully
  deterministic;
* if every unfinished rank is blocked, :class:`DeadlockError` names the
  blocked ranks, their local times, and what they wait on.

Two schedulers produce that identical order.  The ``"heap"`` scheduler
keeps runnable ranks in a (time, rank) heap — a rank leaves the heap
when it blocks and is pushed back by the send or collective completion
that unblocks it, so each scheduling decision is O(log n) instead of an
O(n) rescan.  ANY_SOURCE receives use a per-(dest, tag) heap over the
*heads* of the per-source message queues (heads only: within one queue
arrivals are not sorted, because transfer time depends on message
size).  The ``"linear"`` scheduler is the original full-scan reference,
kept for equivalence tests and benchmarks.

The default ``"auto"`` picks per run: below
:data:`AUTO_HEAP_MIN_RANKS` ranks the linear scan's two-line inner loop
beats the heap's push/pop bookkeeping (measured on the MMPS exchange,
where lockstep time advance defeats the heap's run-ahead fast path),
so small jobs take ``"linear"`` and large jobs take ``"heap"``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.errors import DeadlockError, RankError, RuntimeSimError
from repro.obs.instruments import (
    LAUNCHER_ERRORS,
    LAUNCHER_MESSAGES,
    LAUNCHER_RANKS,
    LAUNCHER_RUNS,
)
from repro.runtime.interconnect import BGQ_TORUS, Interconnect
from repro.runtime.ops import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Recv,
    Reduce,
    Scatter,
    Send,
    payload_nbytes,
)

#: Fixed software cost of posting/completing a receive.
RECV_OVERHEAD_S = 0.3e-6

#: ``scheduler="auto"`` crossover: jobs with at least this many ranks
#: use the heap, smaller ones the linear scan.  Measured on the MMPS
#: pairwise exchange (the heap's worst case — every rank advances in
#: lockstep): linear wins up to ~16 ranks, the heap from ~32 on, and
#: the gap to the heap's best case only widens with size (a 4096-rank
#: ANY_SOURCE fan-in runs ~30x faster under the heap).
AUTO_HEAP_MIN_RANKS = 32


@dataclass(frozen=True)
class RankContext:
    """Passed to every rank function: its coordinates in the job."""

    rank: int
    size: int


@dataclass
class RankResult:
    """Outcome of one rank: return value and final local time."""

    rank: int
    value: Any
    finish_time: float
    messages_sent: int = 0
    messages_received: int = 0
    #: (t0, t1) spans the rank spent computing or injecting messages
    #: (populated when the launcher runs with ``record_busy=True``).
    busy_spans: list[tuple[float, float]] = field(default_factory=list)


@dataclass
class _RankState:
    generator: Generator
    rank: int = 0
    time: float = 0.0
    finished: bool = False
    value: Any = None
    blocked_on: Recv | None = None
    in_collective: Any = None
    collective_payload: Any = None
    send_next: Any = None  # value to send into the generator on resume
    #: True while this rank has an entry in the runnable heap.  A rank's
    #: time never changes while queued, so entries are never stale.
    queued: bool = False
    sent: int = 0
    received: int = 0
    busy_spans: list = field(default_factory=list)

    def mark_busy(self, t0: float, t1: float) -> None:
        if t1 <= t0:
            return
        # Merge with the previous span when contiguous.
        if self.busy_spans and abs(self.busy_spans[-1][1] - t0) < 1e-12:
            self.busy_spans[-1] = (self.busy_spans[-1][0], t1)
        else:
            self.busy_spans.append((t0, t1))


class Launcher:
    """Runs one SPMD program.

    Parameters
    ----------
    rank_fn:
        ``rank_fn(ctx)`` returning a generator (i.e. a function that
        yields ops).  Plain functions that never yield are allowed.
    size:
        Number of ranks.
    interconnect:
        Cost model; defaults to the BG/Q torus.
    scheduler:
        ``"auto"`` (default), ``"heap"``, or ``"linear"``; all produce
        the same deterministic schedule (see the module docstring).
        ``"auto"`` resolves by job size against
        :data:`AUTO_HEAP_MIN_RANKS`; the choice is exposed as
        ``effective_scheduler``.
    """

    def __init__(self, rank_fn: Callable[[RankContext], Any], size: int,
                 interconnect: Interconnect = BGQ_TORUS,
                 record_busy: bool = False, scheduler: str = "auto"):
        if size <= 0:
            raise RuntimeSimError(f"size must be positive, got {size}")
        if scheduler not in ("auto", "heap", "linear"):
            raise RuntimeSimError(
                f"scheduler must be 'auto', 'heap', or 'linear', "
                f"got {scheduler!r}"
            )
        self.rank_fn = rank_fn
        self.size = size
        self.net = interconnect
        self.record_busy = record_busy
        self.scheduler = scheduler
        if scheduler == "auto":
            self.effective_scheduler = (
                "heap" if size >= AUTO_HEAP_MIN_RANKS else "linear")
        else:
            self.effective_scheduler = scheduler
        self._heap_mode = self.effective_scheduler == "heap"
        self._ranks: list[_RankState] = []
        #: (dest, source, tag) -> deque of (arrival_time, payload)
        self._mailboxes: dict[tuple[int, int, int], deque] = {}
        self._collective_gate: dict[Any, list[int]] = {}
        #: Runnable ranks as a (time, rank) heap ("heap" scheduler).
        self._runnable: list[tuple[float, int]] = []
        #: (dest, tag) -> heap of (head_arrival, source) over non-empty
        #: mailboxes, for O(log n) ANY_SOURCE matching.  Entries go
        #: stale when their head is consumed; they are discarded lazily.
        self._any_heads: dict[tuple[int, int], list[tuple[float, int]]] = {}

    # -- public API ------------------------------------------------------------

    def run(self) -> list[RankResult]:
        """Execute to completion; returns per-rank results."""
        self._ranks = []
        self._mailboxes = {}
        self._collective_gate = {}
        self._runnable = []
        self._any_heads = {}
        for rank in range(self.size):
            gen = self._as_generator(self.rank_fn, RankContext(rank, self.size))
            self._ranks.append(_RankState(generator=gen, rank=rank))
        heap_mode = self._heap_mode
        if heap_mode:
            for state in self._ranks:
                self._push_runnable(state)
        runnable = self._runnable
        while True:
            state = self._pop_runnable() if heap_mode else self._pick_runnable()
            if state is None:
                if all(s.finished for s in self._ranks):
                    break
                self._raise_deadlock()
            self._step(state)
            if not heap_mode:
                continue
            # Fast path: while this rank stays runnable, unqueued, and
            # strictly ahead of every queued rank, keep stepping it
            # without a push/pop round trip.  Every other runnable rank
            # is in the heap (sends and collective completions push
            # their wakeups), so beating the heap top *is* winning the
            # global (time, rank) ordering — at few ranks this removes
            # nearly all heap traffic.
            while (not state.finished and state.blocked_on is None
                   and state.in_collective is None and not state.queued
                   and (not runnable
                        or (state.time, state.rank) < runnable[0])):
                self._step(state)
            if not state.finished \
                    and state.in_collective is None and state.blocked_on is None:
                self._push_runnable(state)
        # Scheduling telemetry lands once per run, off the hot loop.
        LAUNCHER_RUNS.inc()
        LAUNCHER_RANKS.inc(self.size)
        LAUNCHER_MESSAGES.labels("sent").inc(sum(s.sent for s in self._ranks))
        LAUNCHER_MESSAGES.labels("received").inc(
            sum(s.received for s in self._ranks)
        )
        return [
            RankResult(rank=i, value=s.value, finish_time=s.time,
                       messages_sent=s.sent, messages_received=s.received,
                       busy_spans=list(s.busy_spans))
            for i, s in enumerate(self._ranks)
        ]

    # -- scheduling -----------------------------------------------------------

    def _push_runnable(self, state: _RankState) -> None:
        if not state.queued:
            state.queued = True
            heapq.heappush(self._runnable, (state.time, state.rank))

    def _pop_runnable(self) -> _RankState | None:
        if not self._runnable:
            return None
        _, rank = heapq.heappop(self._runnable)
        state = self._ranks[rank]
        state.queued = False
        return state

    def _pick_runnable(self) -> _RankState | None:
        """The reference scan: smallest (time, rank) over runnable ranks."""
        best = None
        for state in self._ranks:
            if state.finished or state.in_collective is not None:
                continue
            if state.blocked_on is not None and not self._match_exists(state):
                continue
            if best is None or state.time < best.time:
                best = state
        return best

    def _step(self, state: _RankState) -> None:
        rank = state.rank
        if state.blocked_on is not None:
            # A match arrived; complete the receive.
            state.send_next = self._complete_recv(rank, state, state.blocked_on)
            state.blocked_on = None
        try:
            op = state.generator.send(state.send_next)
        except StopIteration as stop:
            state.finished = True
            state.value = stop.value
            return
        except Exception as exc:
            state.finished = True
            LAUNCHER_ERRORS.labels("rank_crash").inc()
            raise RankError(rank, exc) from exc
        state.send_next = None
        self._dispatch(rank, state, op)

    def _dispatch(self, rank: int, state: _RankState, op: Any) -> None:
        if isinstance(op, Compute):
            if self.record_busy:
                state.mark_busy(state.time, state.time + op.seconds)
            state.time += op.seconds
        elif isinstance(op, Send):
            self._do_send(rank, state, op)
        elif isinstance(op, Recv):
            if self._match_exists_for(rank, op):
                state.send_next = self._complete_recv(rank, state, op)
            else:
                state.blocked_on = op
        elif isinstance(op, (Barrier, Bcast, Gather, Scatter, Allreduce, Reduce)):
            self._enter_collective(rank, state, op)
        else:
            state.finished = True
            raise RankError(rank, RuntimeSimError(f"unknown op {op!r}"))

    # -- point-to-point ----------------------------------------------------------

    def _do_send(self, rank: int, state: _RankState, op: Send) -> None:
        if not 0 <= op.dest < self.size:
            state.finished = True
            raise RankError(rank, RuntimeSimError(f"send to invalid rank {op.dest}"))
        nbytes = payload_nbytes(op.payload, op.nbytes)
        # LogGP gap: back-to-back sends serialize at link bandwidth.
        gap = self.net.injection_gap(nbytes)
        if self.record_busy:
            state.mark_busy(state.time, state.time + gap)
        state.time += gap
        arrival = state.time + self.net.ptp_time(nbytes)
        key = (op.dest, rank, op.tag)
        queue = self._mailboxes.setdefault(key, deque())
        if not queue:
            # The message becomes this mailbox's head: index it.
            heapq.heappush(
                self._any_heads.setdefault((op.dest, op.tag), []), (arrival, rank)
            )
        queue.append((arrival, op.payload))
        state.sent += 1
        dest_state = self._ranks[op.dest]
        if (self._heap_mode
                and dest_state.blocked_on is not None
                and dest_state.blocked_on.tag == op.tag
                and dest_state.blocked_on.source in (rank, ANY_SOURCE)):
            # This send is the match the blocked receiver waits for.
            self._push_runnable(dest_state)

    def _match_exists(self, state: _RankState) -> bool:
        return self._match_exists_for(state.rank, state.blocked_on)

    def _match_exists_for(self, rank: int, op: Recv) -> bool:
        return self._find_mailbox(rank, op) is not None

    def _find_mailbox(self, rank: int, op: Recv) -> tuple[int, int, int] | None:
        if op.source != ANY_SOURCE:
            key = (rank, op.source, op.tag)
            return key if self._mailboxes.get(key) else None
        # ANY_SOURCE: deterministic choice — earliest arrival, then
        # lowest source rank.  The head index gives the answer without
        # scanning every source; an entry is live iff it still describes
        # its mailbox's head.
        heads = self._any_heads.get((rank, op.tag))
        while heads:
            arrival, source = heads[0]
            queue = self._mailboxes.get((rank, source, op.tag))
            if queue and queue[0][0] == arrival:
                return (rank, source, op.tag)
            heapq.heappop(heads)
        return None

    def _complete_recv(self, rank: int, state: _RankState, op: Recv) -> Any:
        key = self._find_mailbox(rank, op)
        if key is None:  # pragma: no cover - guarded by callers
            raise RuntimeSimError("recv completed without a match")
        queue = self._mailboxes[key]
        arrival, payload = queue.popleft()
        if queue:
            # A new head emerged: index it.
            heapq.heappush(
                self._any_heads.setdefault((rank, op.tag), []),
                (queue[0][0], key[1]),
            )
        state.time = max(state.time, arrival) + RECV_OVERHEAD_S
        state.received += 1
        return payload

    # -- collectives -----------------------------------------------------------

    def _collective_key(self, op: Any) -> tuple:
        if isinstance(op, Barrier):
            return ("barrier",)
        if isinstance(op, Bcast):
            return ("bcast", op.root)
        if isinstance(op, Gather):
            return ("gather", op.root)
        if isinstance(op, Scatter):
            return ("scatter", op.root)
        if isinstance(op, Reduce):
            return ("reduce", op.root)
        if isinstance(op, Allreduce):
            return ("allreduce",)
        raise RuntimeSimError(f"not a collective: {op!r}")  # pragma: no cover

    def _enter_collective(self, rank: int, state: _RankState, op: Any) -> None:
        key = self._collective_key(op)
        state.in_collective = op
        state.collective_payload = getattr(op, "payload", None)
        gate = self._collective_gate.setdefault(key, [])
        gate.append(rank)
        if len(gate) == self.size:
            self._finish_collective(key, gate)

    def _finish_collective(self, key: tuple, gate: list[int]) -> None:
        members = [self._ranks[r] for r in gate]
        ops = [s.in_collective for s in members]
        # Everyone leaves at max entry + tree time.
        nbytes = max(
            payload_nbytes(getattr(op, "payload", None), getattr(op, "nbytes", None))
            for op in ops
        )
        exit_time = max(s.time for s in members) + self.net.collective_time(
            self.size, nbytes
        )
        results = self._collective_results(key, gate, members)
        heap_mode = self._heap_mode
        for state, result in zip(members, results):
            state.time = exit_time
            state.in_collective = None
            state.collective_payload = None
            state.send_next = result
            if heap_mode:
                self._push_runnable(state)
        del self._collective_gate[key]

    def _collective_results(self, key: tuple, gate: list[int],
                            members: list[_RankState]) -> list[Any]:
        kind = key[0]
        if kind == "barrier":
            return [None] * len(members)
        by_rank = {r: s.collective_payload for r, s in zip(gate, members)}
        if kind == "bcast":
            root_value = by_rank[key[1]]
            return [root_value] * len(members)
        if kind == "gather":
            ordered = [by_rank[r] for r in sorted(by_rank)]
            return [ordered if r == key[1] else None for r in gate]
        if kind == "scatter":
            root_payload = by_rank[key[1]]
            if root_payload is None or len(root_payload) != len(gate):
                raise RuntimeSimError(
                    f"scatter root payload must have {len(gate)} entries"
                )
            return [root_payload[r] for r in gate]
        if kind == "reduce":
            ordered_ranks = sorted(by_rank)
            op_fn = members[gate.index(ordered_ranks[0])].in_collective.op
            accumulator = by_rank[ordered_ranks[0]]
            for r in ordered_ranks[1:]:
                accumulator = op_fn(accumulator, by_rank[r])
            return [accumulator if r == key[1] else None for r in gate]
        if kind == "allreduce":
            ordered_ranks = sorted(by_rank)
            op_fn = members[gate.index(ordered_ranks[0])].in_collective.op
            accumulator = by_rank[ordered_ranks[0]]
            for r in ordered_ranks[1:]:
                accumulator = op_fn(accumulator, by_rank[r])
            return [accumulator] * len(members)
        raise RuntimeSimError(f"unknown collective {kind}")  # pragma: no cover

    # -- failure reporting -------------------------------------------------------

    def _raise_deadlock(self) -> None:
        blocked = []
        for i, state in enumerate(self._ranks):
            if state.finished:
                continue
            if state.blocked_on is not None:
                op = state.blocked_on
                source = ("ANY_SOURCE" if op.source == ANY_SOURCE
                          else str(op.source))
                blocked.append(
                    f"rank {i} at t={state.time:.9g}s waiting on recv"
                    f"(source={source}, tag={op.tag})"
                )
            elif state.in_collective is not None:
                blocked.append(
                    f"rank {i} at t={state.time:.9g}s inside "
                    f"{type(state.in_collective).__name__}"
                )
        LAUNCHER_ERRORS.labels("deadlock").inc()
        raise DeadlockError("; ".join(blocked) or "no runnable ranks")

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _as_generator(fn: Callable, ctx: RankContext) -> Generator:
        result = fn(ctx)
        if isinstance(result, Generator):
            return result

        def trivial():
            return result
            yield  # pragma: no cover - makes this a generator

        return trivial()
