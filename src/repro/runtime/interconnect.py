"""Interconnect cost models.

The classic postal model: a point-to-point message costs
``latency + size/bandwidth``; tree-based collectives cost
``ceil(log2 P)`` rounds of it.  Parameters for a BG/Q 5-D torus and an
FDR InfiniBand cluster (Stampede-like) are provided.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


class Interconnect:
    """Latency/bandwidth interconnect with tree collectives."""

    def __init__(self, latency_s: float, bandwidth_Bps: float,
                 per_message_overhead_s: float = 0.5e-6, name: str = "generic"):
        if latency_s < 0.0 or per_message_overhead_s < 0.0:
            raise ConfigError("latencies must be non-negative")
        if bandwidth_Bps <= 0.0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth_Bps}")
        self.latency_s = float(latency_s)
        self.bandwidth_Bps = float(bandwidth_Bps)
        self.per_message_overhead_s = float(per_message_overhead_s)
        self.name = name

    def ptp_time(self, nbytes: int) -> float:
        """One point-to-point message, send-to-delivery."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_Bps

    def send_overhead(self) -> float:
        """CPU time the sender burns injecting one message."""
        return self.per_message_overhead_s

    def injection_gap(self, nbytes: int) -> float:
        """Minimum spacing between consecutive sends from one rank
        (LogGP's gap): the larger of the software overhead and the wire
        serialization time.  This is what makes large-message streams
        bandwidth-bound, matching :meth:`messaging_rate`."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        return max(self.per_message_overhead_s, nbytes / self.bandwidth_Bps)

    def rounds(self, ranks: int) -> int:
        """Tree depth for a collective over ``ranks`` participants."""
        if ranks <= 0:
            raise ConfigError(f"ranks must be positive, got {ranks}")
        return max(1, math.ceil(math.log2(ranks))) if ranks > 1 else 0

    def collective_time(self, ranks: int, nbytes: int) -> float:
        """Tree collective: log2(P) point-to-point rounds."""
        return self.rounds(ranks) * self.ptp_time(nbytes)

    def messaging_rate(self, nbytes: int) -> float:
        """Messages/second one rank can inject (MMPS's figure of merit)."""
        per_message = max(self.per_message_overhead_s, nbytes / self.bandwidth_Bps)
        return 1.0 / per_message


#: BG/Q 5-D torus: ~2 GB/s/link x 10 links, sub-microsecond latency.
BGQ_TORUS = Interconnect(latency_s=0.7e-6, bandwidth_Bps=20e9,
                         per_message_overhead_s=0.55e-6, name="bgq-torus")

#: FDR InfiniBand fat tree (Stampede-like).
CLUSTER_FDR_IB = Interconnect(latency_s=1.6e-6, bandwidth_Bps=6.8e9,
                              per_message_overhead_s=1.0e-6, name="fdr-ib")
