"""Deprecation machinery for the v1 -> v2 ``repro.api`` migration.

The v2 surface is namespaced (``repro.api.session``, ``.data``,
``.mech``, ``.chaos``, ``.exec``, ``.errors``, ``.service``); the flat
v1 names keep resolving through :func:`deprecated_alias`, which warns
**once per name per process** so a hot loop touching a legacy alias
does not drown the log, and a test can still assert the warning fires.
"""

from __future__ import annotations

import warnings

#: Flat names already warned about this process (one warning per name).
_WARNED: set[str] = set()


def deprecated_alias(old: str, new: str, value):
    """Return ``value``, emitting one :class:`DeprecationWarning` the
    first time the flat name ``old`` is resolved, pointing at ``new``.
    """
    if old not in _WARNED:
        _WARNED.add(old)
        warnings.warn(
            f"{old} is deprecated since API v2; import {new} instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return value


def reset_deprecation_warnings() -> None:
    """Forget which aliases warned (so tests can assert the once-only
    behavior deterministically)."""
    _WARNED.clear()
