"""Benchmarks of the experiment execution engine.

The cold pass runs all 13 experiments (15 tasks) through the pool; the
warm pass must serve the same bytes from the content-addressed cache at
a >= 10x speedup over cold-serial.  Parallel speedup is *not* asserted:
it is bounded by the host's core count (this baseline container has
one), and `BENCH_exec.json` records `cpus` next to the walls for that
reason.
"""

from repro.exec import bench as exec_bench
from repro.experiments import report


def test_engine_warm_cache_speedup(benchmark):
    """Cold serial vs warm cache on the full report: the cache must buy
    >= 10x, with byte-identical markdown across every run."""
    results = benchmark.pedantic(
        lambda: exec_bench.run(json_path=None), rounds=1, iterations=1)
    assert results["byte_identical"], (
        "engine produced different report bytes across runs")
    warm = results["runs"]["warm_cache"]
    assert warm["speedup_vs_cold_serial"] >= 10.0, (
        f"warm cache only {warm['speedup_vs_cold_serial']:.1f}x over "
        f"cold serial")
    assert results["tasks"] == 15


def test_report_generation_wall(benchmark):
    """The serial no-cache report pass — the pre-engine baseline cost."""
    md = benchmark.pedantic(report.generate_markdown, rounds=1, iterations=1)
    assert md.startswith("# EXPERIMENTS")
