"""Benchmark: regenerate Figure 5 (K20 vector-add power + temperature)."""

from repro.experiments import fig5


def test_fig5(benchmark, report):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    assert result.datagen_mean_w < 60.0
    assert 120.0 < result.compute_mean_w < 150.0
    assert result.temp_end_c > result.temp_start_c + 10.0
    assert result.temp_monotone_fraction > 0.95
    report("Figure 5", [
        ("first ~10 s", "GPU hasn't been given work",
         f"{result.datagen_mean_w:.1f} W during host datagen"),
        ("compute plateau", "~125-150 W",
         f"{result.compute_mean_w:.1f} W"),
        ("temperature", "steady increase (~40->65 C)",
         f"{result.temp_start_c:.1f} -> {result.temp_end_c:.1f} C, "
         f"{100 * result.temp_monotone_fraction:.0f}% rising"),
    ])
