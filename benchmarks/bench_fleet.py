"""Benchmarks of the federated fleet sweep and the channel cache.

The smoke-sized sweep and ablation run live here (2 sites x 4 racks,
200 ticks); the committed 10x-Mira figures live in ``BENCH_fleet.json``
and are validated against the same floors — the sweep must simulate
faster than realtime and the freshness cache must cut access-channel
crossings >= 5x on the shared-device consumer pattern, byte-identically.
"""

import json
import pathlib

from repro.fleet import fleet_bench
from repro.fleet.sweep import CACHE_REDUCTION_FLOOR, REALTIME_FLOOR

COMMITTED = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def test_fleet_sweep_smoke_floors(benchmark, report):
    """2-site smoke sweep + ablation: realtime floor, >= 5x crossings
    reduction, byte-identical cache-on/off outputs."""
    results = benchmark.pedantic(
        lambda: fleet_bench(json_path=None, smoke=True),
        rounds=1, iterations=1)
    sweep = results["fleet_sweep"]
    ablation = results["cache_ablation"]
    assert sweep["speedup_vs_scalar"] >= REALTIME_FLOOR, (
        f"fleet sweep only {sweep['speedup_vs_scalar']:.1f}x realtime")
    assert ablation["crossings_reduction"] >= CACHE_REDUCTION_FLOOR, (
        f"cache only cut crossings "
        f"{ablation['crossings_reduction']:.1f}x (< 5x)")
    assert ablation["byte_identical"], (
        "cache-on run diverged from cache-off bytes")
    report("fleet sweep (smoke)", [
        ("realtime factor", ">= 2x",
         f"{sweep['speedup_vs_scalar']:.0f}x"),
        ("crossings cut", ">= 5x (Sec. IV poll sharing)",
         f"{ablation['crossings_reduction']:.1f}x"),
        ("cache visible in bytes", "never",
         "no" if ablation["byte_identical"] else "YES"),
    ])


def test_committed_fleet_figures_hold_floors():
    """The committed 10x-Mira BENCH_fleet.json must itself satisfy the
    floors the CLI gates on — stale figures fail here, not in review."""
    figures = json.loads(COMMITTED.read_text())
    sweep = figures["fleet_sweep"]
    ablation = figures["cache_ablation"]
    assert sweep["sites"] == 10 and sweep["racks"] == 48
    assert sweep["records"] > 0 and sweep["dropped"] == 0
    assert sweep["speedup_vs_scalar"] >= REALTIME_FLOOR
    assert ablation["crossings_reduction"] >= CACHE_REDUCTION_FLOOR
    assert ablation["byte_identical"] is True
