"""Scale benchmark: a full-Mira MonEQ session.

"Our experiences with MonEQ show that it can easily scale to a full
system run on Mira (49,152 compute nodes)."  (paper §III)

The bench stands up all 48 racks (1,536 node boards, one EMON agent
each) and profiles a short toy run, checking that per-agent collection
cost stays identical to the single-card case and that total overhead
remains sub-percent — the paper's scalability claim, at the paper's
scale.
"""

import math
import time

import pytest

from repro.bgq.envdb import SERVER_CAPACITY_RECORDS_PER_S
from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.sim.rng import RngRegistry
from repro.workloads.toy import FixedRuntimeToyWorkload

RUN_S = 20.0
#: Shard count that sustains a full-Mira sweep at the 60 s minimum.
SHARDS = 16


def run_full_mira():
    machine = BgqMachine.mira(rng=RngRegistry(211), start_poller=False)
    boards = machine.run_job(FixedRuntimeToyWorkload(duration=RUN_S),
                             node_count=machine.node_count, t_start=0.0)
    session = MoneqSession(
        [BgqEmonBackend(machine.emon(b.location)) for b in boards],
        machine.events, config=MoneqConfig(polling_interval_s=0.560),
        node_count=machine.node_count,
    )
    machine.events.run_until(session.t_start + RUN_S)
    return machine, session.finalize()


def test_full_mira_session(benchmark, report):
    machine, result = benchmark.pedantic(run_full_mira, rounds=1, iterations=1)
    assert machine.node_count == 49_152
    assert result.overhead.agent_count == 1536
    assert len(result.output_paths) == 1536
    # Per-agent collection stays the single-card figure.
    per_tick = result.overhead.collection_s / result.overhead.ticks
    assert per_tick == pytest.approx(1.10e-3, rel=0.01)
    report("Full-Mira MonEQ session", [
        ("nodes", "49,152 (full Mira)", f"{machine.node_count:,}"),
        ("agents (node cards)", "one per 32 nodes", str(result.overhead.agent_count)),
        ("per-agent collection", "same as any single card",
         f"{per_tick * 1000:.2f} ms/tick"),
        ("total overhead", "'easily scales'",
         f"{result.overhead.percent_of_runtime:.2f}% of a {RUN_S:.0f} s run"),
    ])


# -- sharded envdb query engine at Mira scale ---------------------------------

QUERY_SWEEPS = 12
QUERY_INTERVAL_S = 240.0
QUERY_REPEATS = 24


def _seed_path_window_stats(records, field, window_s):
    """What a consumer did before ``aggregate()``: full raw scan, then a
    per-location/per-window reduce by hand."""
    out = {}
    for record in records:
        key = (record.location, math.floor(record.timestamp / window_s))
        value = record.values[field]
        acc = out.get(key)
        if acc is None:
            out[key] = [1, value, value, value]
        else:
            acc[0] += 1
            acc[1] = min(acc[1], value)
            acc[2] = max(acc[2], value)
            acc[3] += value
    return out


def run_query_throughput():
    """Repeated per-rack range queries on a full Mira: the unsharded
    seed path (raw scan + manual reduce) vs the sharded engine's
    cache-backed ``aggregate`` with the plan pinned to one shard."""
    horizon = QUERY_INTERVAL_S * QUERY_SWEEPS
    seed_machine = BgqMachine.mira(rng=RngRegistry(211),
                                   poll_interval_s=QUERY_INTERVAL_S)
    sharded = BgqMachine.mira(rng=RngRegistry(211),
                              poll_interval_s=QUERY_INTERVAL_S,
                              envdb_shards=SHARDS)
    seed_machine.advance_to(horizon)
    sharded.advance_to(horizon)

    prefixes = [f"R{i:02d}" for i in range(48)]
    # Warm the aggregate cache: the criterion is *repeated*-query
    # throughput, i.e. the cache-hit regime.
    for prefix in prefixes:
        sharded.envdb.aggregate("bpm", "input_power_w", 0.0, horizon,
                                horizon, prefix)

    t0 = time.perf_counter()
    for i in range(QUERY_REPEATS):
        records = seed_machine.envdb.range_readings(
            "bpm", 0.0, horizon, prefixes[i % len(prefixes)])
        _seed_path_window_stats(records, "input_power_w", horizon)
    seed_s = (time.perf_counter() - t0) / QUERY_REPEATS

    t0 = time.perf_counter()
    for i in range(QUERY_REPEATS):
        sharded.envdb.aggregate("bpm", "input_power_w", 0.0, horizon,
                                horizon, prefixes[i % len(prefixes)])
    cached_s = (time.perf_counter() - t0) / QUERY_REPEATS
    return seed_machine, sharded, seed_s, cached_s


def test_sharded_query_throughput(benchmark, report):
    seed_machine, sharded, seed_s, cached_s = benchmark.pedantic(
        run_query_throughput, rounds=1, iterations=1)
    speedup = seed_s / cached_s
    plan = sharded.envdb.store.plan("aggregate", "bpm", "R00-M0")
    assert sharded.envdb.store.records_ingested == \
        seed_machine.envdb.store.records_ingested
    assert plan.fan_out == 1          # rack prefix pins to one shard
    assert speedup >= 5.0
    report("Sharded envdb query throughput (full Mira)", [
        ("sweeps stored", f"{QUERY_SWEEPS} x {QUERY_INTERVAL_S:.0f} s",
         f"{sharded.envdb.store.records_ingested:,} records"),
        ("seed path (N=1, raw scan)", "full range + manual reduce",
         f"{seed_s * 1e3:.2f} ms/query"),
        (f"sharded path (N={SHARDS}, cached)", "aggregate-cache hit",
         f"{cached_s * 1e3:.2f} ms/query"),
        ("speedup", ">= 5x required", f"{speedup:.1f}x"),
    ])


SATURATION_SWEEPS = 3
MIN_INTERVAL_S = 60.0


def run_min_interval_sweeps():
    """Full-Mira sweeps at the 60 s minimum interval, unsharded vs
    sharded: the N=1 default saturates exactly as the seed did, 16
    shards sustain the same offered load with nothing dropped."""
    machines = {}
    for shards in (1, SHARDS):
        machine = BgqMachine.mira(rng=RngRegistry(7),
                                  poll_interval_s=MIN_INTERVAL_S,
                                  envdb_shards=shards)
        machine.advance_to(MIN_INTERVAL_S * SATURATION_SWEEPS)
        machines[shards] = machine
    return machines


def test_sharded_sweep_at_minimum_interval(benchmark, report):
    machines = benchmark.pedantic(run_min_interval_sweeps,
                                  rounds=1, iterations=1)
    unsharded = machines[1].envdb
    sharded = machines[SHARDS].envdb

    offered_per_sweep = unsharded.sensors_per_poll
    budget_per_sweep = int(MIN_INTERVAL_S * SERVER_CAPACITY_RECORDS_PER_S)
    assert offered_per_sweep == 6144  # 1,536 BPMs x 4 tables

    # N=1 saturates exactly as the seed: same load fraction, and every
    # record past the single server's per-sweep budget is dropped.
    assert unsharded.capacity_fraction() == pytest.approx(
        offered_per_sweep / budget_per_sweep)
    assert unsharded.capacity_fraction() > 1.0
    drops_per_sweep = offered_per_sweep - budget_per_sweep
    assert unsharded.dropped_records == drops_per_sweep * SATURATION_SWEEPS
    assert unsharded.store.records_ingested == \
        budget_per_sweep * SATURATION_SWEEPS

    # 16 shards sustain the full sweep at the minimum interval.
    assert sharded.capacity_fraction() < 1.0
    assert sharded.dropped_records == 0
    assert sharded.store.records_ingested == \
        offered_per_sweep * SATURATION_SWEEPS
    assert sharded.shortest_sustainable_interval() == MIN_INTERVAL_S

    report("Full-Mira sweeps at the 60 s minimum interval", [
        ("offered per sweep", "1,536 BPMs x 4 tables",
         f"{offered_per_sweep:,} records"),
        ("N=1 load", "seed saturation, 6144/3600",
         f"{unsharded.capacity_fraction():.2f}x"),
        ("N=1 dropped", f"{drops_per_sweep:,}/sweep",
         f"{unsharded.dropped_records:,} records"),
        (f"N={SHARDS} load", "under the per-shard ceiling",
         f"{sharded.capacity_fraction():.2f}x"),
        (f"N={SHARDS} dropped", "sustains the minimum interval",
         str(sharded.dropped_records)),
    ])
