"""Scale benchmark: a full-Mira MonEQ session.

"Our experiences with MonEQ show that it can easily scale to a full
system run on Mira (49,152 compute nodes)."  (paper §III)

The bench stands up all 48 racks (1,536 node boards, one EMON agent
each) and profiles a short toy run, checking that per-agent collection
cost stays identical to the single-card case and that total overhead
remains sub-percent — the paper's scalability claim, at the paper's
scale.
"""

import pytest

from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.sim.rng import RngRegistry
from repro.workloads.toy import FixedRuntimeToyWorkload

RUN_S = 20.0


def run_full_mira():
    machine = BgqMachine.mira(rng=RngRegistry(211), start_poller=False)
    boards = machine.run_job(FixedRuntimeToyWorkload(duration=RUN_S),
                             node_count=machine.node_count, t_start=0.0)
    session = MoneqSession(
        [BgqEmonBackend(machine.emon(b.location)) for b in boards],
        machine.events, config=MoneqConfig(polling_interval_s=0.560),
        node_count=machine.node_count,
    )
    machine.events.run_until(session.t_start + RUN_S)
    return machine, session.finalize()


def test_full_mira_session(benchmark, report):
    machine, result = benchmark.pedantic(run_full_mira, rounds=1, iterations=1)
    assert machine.node_count == 49_152
    assert result.overhead.agent_count == 1536
    assert len(result.output_paths) == 1536
    # Per-agent collection stays the single-card figure.
    per_tick = result.overhead.collection_s / result.overhead.ticks
    assert per_tick == pytest.approx(1.10e-3, rel=0.01)
    report("Full-Mira MonEQ session", [
        ("nodes", "49,152 (full Mira)", f"{machine.node_count:,}"),
        ("agents (node cards)", "one per 32 nodes", str(result.overhead.agent_count)),
        ("per-agent collection", "same as any single card",
         f"{per_tick * 1000:.2f} ms/tick"),
        ("total overhead", "'easily scales'",
         f"{result.overhead.percent_of_runtime:.2f}% of a {RUN_S:.0f} s run"),
    ])
