"""Performance benchmarks of the simulation infrastructure itself.

Unlike the figure benches (which regenerate paper artifacts), these
measure the *wall-clock* cost of the substrate — the launcher's
messaging loop, dense sensor sampling, and a full MonEQ session — so
regressions in the hot paths show up in `--benchmark-compare` runs.
"""

import numpy as np

from repro.core import moneq
from repro.core.moneq.config import MoneqConfig
from repro.perfbench import bench_launcher_fanin
from repro.runtime.programs import run_mmps
from repro.testbeds import gpu_node, rapl_node
from repro.workloads.vectoradd import VectorAddWorkload


def test_launcher_message_throughput(benchmark):
    """2x2000 messages through the cooperative scheduler."""
    result = benchmark(run_mmps, ranks=2, messages_per_rank=2000)
    assert result.achieved_rate_per_rank > 1e6


def test_heap_scheduler_fanin_speedup(benchmark):
    """4096-rank ANY_SOURCE fan-in: the heap scheduler must beat the
    seed's linear `_pick_runnable` scan by >= 5x (same results)."""
    result = benchmark.pedantic(bench_launcher_fanin, rounds=1, iterations=1)
    assert result["speedup_vs_scalar"] >= 5.0, (
        f"heap scheduler only {result['speedup_vs_scalar']:.1f}x over linear"
    )


def test_dense_sensor_sampling(benchmark):
    """600k sample-and-hold reads with noise, vectorized."""
    node, gpu, _ = gpu_node(seed=95)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    t = np.arange(0.0, 60.0, 1e-4)

    readings = benchmark(gpu.power_sensor.read, t)
    assert len(readings) == len(t)
    assert float(readings.mean()) > 40.0


def test_full_moneq_session(benchmark):
    """A 60 s RAPL profile at the 60 ms hardware minimum."""

    def run():
        node, _ = rapl_node(seed=96)
        return moneq.profile_run(node, duration_s=60.0,
                                 config=MoneqConfig(polling_interval_s=0.06))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.overhead.ticks == 1000
