"""Benchmark: regenerate Figure 8 (128-card Gaussian elimination sum
power on the Stampede slice)."""

from repro.experiments import fig8


def test_fig8(benchmark, report):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    assert result.cards == 128
    assert 13_000.0 < result.datagen_mean_w < 16_000.0
    assert 22_000.0 < result.compute_mean_w < 27_000.0
    report("Figure 8", [
        ("datagen phase", "first ~100 s, cards idle",
         f"{result.datagen_mean_w / 1e3:.1f} kW until "
         f"{result.datagen_end_s:.0f} s"),
        ("compute phase", "rises toward ~25 kW",
         f"{result.compute_mean_w / 1e3:.1f} kW from "
         f"{result.compute_start_s:.0f} s"),
        ("transition", "clearly shown where generation stops",
         f"jump factor {result.compute_mean_w / result.datagen_mean_w:.2f}x"),
    ])
