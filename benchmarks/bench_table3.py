"""Benchmark: regenerate Table III (MonEQ time overhead on Mira)."""

import pytest

from repro.experiments import table3

#: Paper's Table III, seconds.
PAPER = {
    "Application Runtime": {32: 202.78, 512: 202.73, 1024: 202.74},
    "Time for Initialization": {32: 0.0027, 512: 0.0032, 1024: 0.0033},
    "Time for Finalize": {32: 0.1510, 512: 0.1550, 1024: 0.3347},
    "Time for Collection": {32: 0.3871, 512: 0.3871, 1024: 0.3871},
    "Total Time for MonEQ": {32: 0.5409, 512: 0.5455, 1024: 0.7251},
}


def test_table3(benchmark, report):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    rows = []
    for name, paper_row in PAPER.items():
        measured = result.row(name)
        rows.append((
            name,
            " / ".join(f"{paper_row[n]:.4f}" for n in (32, 512, 1024)),
            " / ".join(f"{measured[n]:.4f}" for n in (32, 512, 1024)),
        ))
    report("Table III (32 / 512 / 1024 nodes)", rows)

    # Shape assertions, matching the paper's arguments.
    collection = result.row("Time for Collection")
    assert collection[32] == collection[512] == collection[1024]
    assert collection[1024] == pytest.approx(0.3871, rel=0.1)
    init = result.row("Time for Initialization")
    assert init[32] < init[1024] < 0.01
    fin = result.row("Time for Finalize")
    assert fin[1024] > 2.0 * fin[512]
    assert result.reports[1024].percent_of_runtime == pytest.approx(0.36, abs=0.15)
