"""Ablation: access-path choice on the same hardware.

Two of the paper's mechanisms offer alternative paths to identical
counters: RAPL via the msr chardev vs perf_event, and the Xeon Phi via
the in-band API vs the MICRAS daemon vs out-of-band IPMB.  The ablation
measures the per-query virtual cost of each and checks the agreement of
the returned values.
"""

import pytest

from repro.host.kernel import Kernel
from repro.host.node import Node
from repro.host.permissions import ROOT
from repro.rapl.driver import install_msr_driver, read_msr_userspace
from repro.rapl.msr import MSR_PKG_ENERGY_STATUS
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.rapl.perf_event import PerfEventRapl
from repro.sim.rng import RngRegistry
from repro.testbeds import phi_node


def rapl_paths():
    node = Node("ab-node", kernel=Kernel("3.14"), rng=RngRegistry(91))
    package = CpuPackage(SANDY_BRIDGE, rng=node.rng.fork("cpu"))
    node.attach("cpu", package)
    install_msr_driver(node)
    node.kernel.modprobe("msr")
    node.clock.advance(1.0)

    t0 = node.clock.now
    msr_raw = read_msr_userspace(node, 0, MSR_PKG_ENERGY_STATUS, ROOT)
    msr_cost = node.clock.now - t0

    perf = PerfEventRapl(node, package)
    t0 = node.clock.now
    perf_joules = perf.read_joules("power/energy-pkg/")
    perf_cost = node.clock.now - t0

    msr_joules = msr_raw * package.units.energy_j
    return msr_cost, perf_cost, msr_joules, perf_joules


def phi_paths():
    rig = phi_node(seed=92)
    rig.node.clock.advance(1.0)
    costs = {}
    values = {}
    t0 = rig.node.clock.now
    values["api"] = rig.sysmgmt.query_power_w()
    costs["api"] = rig.node.clock.now - t0
    t0 = rig.node.clock.now
    values["daemon"] = rig.micras.read_power_w()
    costs["daemon"] = rig.node.clock.now - t0
    t0 = rig.node.clock.now
    values["oob"] = rig.bmc.read_power_w()
    costs["oob"] = rig.node.clock.now - t0
    return costs, values


def test_rapl_access_path_ablation(benchmark, report):
    msr_cost, perf_cost, msr_joules, perf_joules = benchmark(rapl_paths)
    assert perf_cost > msr_cost  # the paper's expectation
    assert msr_joules == pytest.approx(perf_joules, rel=0.01)  # same counter
    report("RAPL access paths", [
        ("msr chardev", "0.03 ms/query",
         f"{msr_cost * 1000:.3f} ms, {msr_joules:.2f} J read"),
        ("perf_event", "untested in paper; expected slower",
         f"{perf_cost * 1000:.3f} ms, {perf_joules:.2f} J read"),
    ])


def test_phi_access_path_ablation(benchmark, report):
    costs, values = benchmark.pedantic(phi_paths, rounds=1, iterations=1)
    assert costs["daemon"] < costs["api"] < costs["oob"]
    spread = max(values.values()) - min(values.values())
    assert spread < 8.0  # all three read the same SMC gauge
    report("Phi access paths", [
        ("SysMgmt API", "14.2 ms, perturbs card power",
         f"{costs['api'] * 1000:.2f} ms -> {values['api']:.1f} W"),
        ("MICRAS daemon", "0.04 ms, card-side only",
         f"{costs['daemon'] * 1000:.3f} ms -> {values['daemon']:.1f} W"),
        ("out-of-band IPMB", "no host/card cost, slow bus",
         f"{costs['oob'] * 1000:.1f} ms -> {values['oob']:.1f} W"),
    ])
