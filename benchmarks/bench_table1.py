"""Benchmark: regenerate Table I (sensor availability matrix)."""

from repro.experiments import table1


def test_table1(benchmark, report):
    result = benchmark(table1.run)
    assert result.only_universal_is_total_power
    counts = result.availability_counts
    assert counts["Xeon Phi"] > counts["NVML"] > counts["Blue Gene/Q"] > counts["RAPL"]
    report("Table I", [
        ("universal data points", "total power only",
         ", ".join(result.universal_items)),
        ("richest platform", "Xeon Phi",
         max(counts, key=counts.get)),
        ("availability counts", "(not quantified)",
         str(counts)),
    ])
    print()
    print(result.rendered)
