"""Benchmark: the RAPL counter-overflow cliff (§II-B text)."""

from repro.experiments import rapl_overflow


def test_rapl_overflow(benchmark, report):
    result = benchmark.pedantic(rapl_overflow.run, rounds=1, iterations=1)
    assert 60.0 <= result.max_safe_interval() <= 65.536
    bad = [p for p in result.points if p.interval_s >= 70.0]
    assert all(p.relative_error > 0.25 for p in bad)
    report("RAPL overflow", [
        ("wrap period @1 kW", "~60-65 s ('about 60 seconds')",
         f"{result.wrap_period_s:.1f} s"),
        ("sampling <= 65 s", "accurate",
         f"max error {max(p.relative_error for p in result.points if p.interval_s <= 65.0):.2%}"),
        ("sampling >= 70 s", "erroneous data",
         f"errors {[f'{p.relative_error:.0%}' for p in bad]}"),
    ])
