"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper,
asserts the paper's qualitative shape, and hands a paper-vs-measured
block to the ``report`` fixture.  The blocks are emitted in the
terminal summary (after the pytest-benchmark table), so they appear in
``bench_output.txt`` without needing ``-s``.
"""

import pytest

_BLOCKS: list[str] = []


def paper_vs_measured(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Queue a compact paper-vs-measured block for the terminal summary."""
    lines = [f"[{title}]"]
    width = max(len(r[0]) for r in rows)
    for label, paper, measured in rows:
        lines.append(f"  {label.ljust(width)}  paper: {paper:<24} "
                     f"measured: {measured}")
    _BLOCKS.append("\n".join(lines))


@pytest.fixture
def report():
    return paper_vs_measured


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _BLOCKS:
        return
    terminalreporter.write_sep("=", "paper vs. measured")
    for block in _BLOCKS:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
