"""Benchmark: self-instrumentation overhead on the Figure 1 pipeline.

The ``repro.obs`` registry instruments every collector hot path; the
paper's own Table III argument (a profiler must cost ~1 % of runtime,
not ~14 %) applies to us too.  This benchmark proves instrumentation
costs < 5 % of the Figure 1 pipeline.

Raw enabled-vs-disabled wall clock on a ~100 ms pipeline is dominated
by scheduler noise (container timing jitters by +/-20 %), so the
asserted bound is constructed the noise-proof way: time a metric update
in a tight loop (a stable microbenchmark), count how many updates one
instrumented fig1 run actually performs (deterministic — read straight
from the registry), and divide their product by the pipeline's own wall
clock.  The A/B wall-clock comparison is still reported for color.
"""

import time

import repro.obs as obs
from repro.experiments import fig1
from repro.obs import get_registry

#: Tight-loop iterations for the per-update microbenchmark.
MICRO_ITERS = 50_000


def _counter_updates() -> float:
    """Sum of every counter sample in the global registry — each
    ``inc(k)`` adds k >= 1, so the delta across a run upper-bounds the
    number of update calls the run made."""
    total = 0.0
    for family in get_registry().families():
        if family.kind == "counter":
            total += sum(family.samples().values())
    return total


def _time_s(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_overhead(benchmark, report):
    obs.reset()
    fig1.run()  # warm caches before measuring anything

    # Stable per-update cost: counter inc and histogram observe.
    registry = get_registry()
    bench_counter = registry.counter(
        "bench_updates_total", "overhead microbenchmark scratch counter")
    bench_histogram = registry.histogram(
        "bench_update_seconds", "overhead microbenchmark scratch histogram")
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERS):
        bench_counter.inc()
        bench_histogram.observe(1e-3)
    per_update_s = (time.perf_counter() - t0) / (2 * MICRO_ITERS)

    # Deterministic update count of one instrumented fig1 run.
    before = _counter_updates()
    run_s = _time_s(fig1.run, rounds=1)
    updates = _counter_updates() - before

    pipeline_s = benchmark.pedantic(
        lambda: _time_s(fig1.run), rounds=1, iterations=1)
    bound = updates * per_update_s / pipeline_s

    # Noisy but human-interesting: raw A/B wall clock.
    obs.set_enabled(False)
    try:
        disabled_s = _time_s(fig1.run)
    finally:
        obs.set_enabled(True)

    report("Instrumentation overhead (fig1 pipeline)", [
        ("update cost", "O(100 ns)", f"{per_update_s * 1e9:.0f} ns"),
        ("updates/run", "O(1000)", f"{updates:.0f}"),
        ("bound", "< 5 % of pipeline",
         f"{bound:.3%} of {pipeline_s * 1e3:.1f} ms"),
        ("raw A/B", "noisy, unasserted",
         f"off {disabled_s * 1e3:.1f} ms / on {run_s * 1e3:.1f} ms"),
    ])
    assert updates > 0, "fig1 run recorded no metric updates"
    assert bound < 0.05, (
        f"instrumentation bound {bound:.2%} of the fig1 pipeline "
        f"({updates:.0f} updates x {per_update_s * 1e9:.0f} ns "
        f"over {pipeline_s * 1e3:.1f} ms)"
    )
