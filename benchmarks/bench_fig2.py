"""Benchmark: regenerate Figure 2 (MMPS via MonEQ, 7 domains)."""

from repro.experiments import fig2


def test_fig2(benchmark, report):
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    assert len(result.domains) == 7
    assert result.agreement_with_bpm.relative_difference < 0.05
    assert not result.idle_samples_present
    chip = result.domains["chip_core"].mean()
    assert all(chip >= result.domains[name].mean() for name in result.domains.names)
    report("Figure 2", [
        ("domains", "7 stacked domains", f"{len(result.domains)}"),
        ("node-card total", "matches BPM total power",
         f"{100 * result.agreement_with_bpm.relative_difference:.1f}% difference"),
        ("idle period", "no longer visible",
         f"visible={result.idle_samples_present}"),
        ("data points", "many more than BPM view",
         f"{result.samples} samples at 560 ms"),
        ("top consumer", "chip core",
         max(result.domains.names, key=lambda n: result.domains[n].mean())),
    ])
