"""Benchmark: regenerate Figure 1 (MMPS power at the BPMs)."""

from repro.experiments import fig1


def test_fig1(benchmark, report):
    result = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    assert result.idle.visible
    assert 700.0 < result.idle.idle_level < 900.0
    assert 1500.0 < result.idle.active_level < 1900.0
    report("Figure 1", [
        ("idle shelf", "~800 W, clearly visible",
         f"{result.idle.idle_level:.0f} W, visible={result.idle.visible}"),
        ("job plateau", "~1600-1800 W",
         f"{result.idle.active_level:.0f} W"),
        ("sampling", "~4 min env-DB polls",
         f"{result.samples} samples at {result.poll_interval_s:.0f} s"),
    ])
