"""Ablation: MonEQ polling interval vs data volume and overhead.

The design choice DESIGN.md calls out: MonEQ defaults to each
hardware's minimum interval.  Sweeping the interval on a RAPL node
shows the trade the paper describes — finer polling buys samples at a
linear cost in collection overhead, and sampling slower than the
counter wrap (~60 s here scaled down) loses data fidelity.
"""

import pytest

from repro.core import moneq
from repro.core.moneq.config import MoneqConfig
from repro.testbeds import rapl_node

INTERVALS_S = (0.060, 0.120, 0.500, 1.0, 5.0)


def sweep():
    rows = []
    for interval in INTERVALS_S:
        node, _ = rapl_node(seed=81)
        result = moneq.profile_run(
            node, duration_s=60.0, config=MoneqConfig(polling_interval_s=interval)
        )
        rows.append((interval, result.overhead.ticks,
                     result.overhead.percent_of_runtime))
    return rows


def test_polling_interval_ablation(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Samples scale inversely with interval; overhead scales with rate.
    samples = [r[1] for r in rows]
    overheads = [r[2] for r in rows]
    assert samples == sorted(samples, reverse=True)
    assert overheads == sorted(overheads, reverse=True)
    # At the hardware minimum the collection duty is 0.12 ms / 60 ms =
    # 0.2%; total overhead adds the fixed init+finalize amortized over
    # the short 60 s run (~0.25% more).
    assert overheads[0] == pytest.approx(0.45, abs=0.15)
    report("Polling-interval ablation (RAPL, 60 s run)", [
        (f"{interval * 1000:.0f} ms", "finer -> more data, more overhead",
         f"{ticks} samples, {pct:.3f}% overhead")
        for interval, ticks, pct in rows
    ])
