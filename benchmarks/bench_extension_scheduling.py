"""Extension benchmark: power-aware scheduling savings.

The paper's motivating prior work [2] reported electricity-bill savings
of up to 23% from power-aware scheduling on BG/Q.  The bench runs the
measurement-to-scheduling loop on the simulators and checks the shape:
positive savings under a two-tier tariff, zero under a flat one.
"""

import pytest

from repro.host.pricing import Tariff
from repro.scheduling import (
    Job,
    fcfs_schedule,
    power_aware_schedule,
    savings_percent,
)
from repro.units import HOUR


def batch():
    arrive = 9.0 * HOUR
    return (
        [Job(f"sim-{i}", 5 * HOUR, 25_000.0, nodes=512, submit_s=arrive)
         for i in range(3)]
        + [Job(f"post-{i}", 2 * HOUR, 900.0, nodes=128, submit_s=arrive)
           for i in range(4)]
    )


def run():
    day_night = Tariff.day_night(on_peak=0.12, off_peak=0.04)
    flat = Tariff.flat(0.08)
    outcomes = {
        "baseline": fcfs_schedule(batch(), day_night, capacity=1024),
        "aware": power_aware_schedule(batch(), day_night, capacity=1024),
        "baseline-flat": fcfs_schedule(batch(), flat, capacity=1024),
        "aware-flat": power_aware_schedule(batch(), flat, capacity=1024),
    }
    return outcomes


def test_scheduling_extension(benchmark, report):
    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    saved = savings_percent(outcomes["baseline"], outcomes["aware"])
    saved_flat = savings_percent(outcomes["baseline-flat"], outcomes["aware-flat"])
    assert saved > 5.0
    assert saved_flat == pytest.approx(0.0, abs=0.5)
    assert outcomes["aware"].makespan_s >= outcomes["baseline"].makespan_s
    report("Power-aware scheduling (extension)", [
        ("savings, two-tier tariff", "up to 23% in ref [2]",
         f"{saved:.1f}% (synthetic 3:1 peak/off-peak tariff)"),
        ("savings, flat tariff", "0% (nothing to exploit)",
         f"{saved_flat:.1f}%"),
        ("cost of savings", "jobs delayed to off-peak",
         f"makespan {outcomes['aware'].makespan_s / HOUR:.1f} h vs "
         f"{outcomes['baseline'].makespan_s / HOUR:.1f} h"),
    ])
