"""Benchmark: regenerate Table II (available RAPL sensors)."""

from repro.experiments import table2


def test_table2(benchmark, report):
    result = benchmark(table2.run)
    assert [r[0] for r in result.rows] == [
        "Package (PKG)", "Power Plane 0 (PP0)", "Power Plane 1 (PP1)", "DRAM",
    ]
    assert all(result.live_counters.values())
    report("Table II", [
        ("domain list", "PKG, PP0, PP1, DRAM",
         ", ".join(r[0] for r in result.rows)),
        ("energy MSRs live", "(implied)",
         str(result.live_counters)),
    ])
