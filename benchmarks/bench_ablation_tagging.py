"""Ablation: tagging on vs off.

"Because the injection happens after the program has completed, the
overhead of tagging is almost negligible."  Two identical profiled runs
— one wrapping three work loops in tags (6 API calls), one without —
must show identical collection overhead and virtually identical
finalize cost.
"""

import pytest

from repro.core import moneq
from repro.core.moneq.config import MoneqConfig
from repro.testbeds import rapl_node


def run_pair():
    node_a, _ = rapl_node(seed=94)
    session = moneq.initialize(node_a)
    for i in range(3):
        with session.tag(f"work-loop-{i}"):
            node_a.events.run_until(node_a.clock.now + 10.0)
    tagged = moneq.finalize(session)

    node_b, _ = rapl_node(seed=94)
    untagged = moneq.profile_run(node_b, duration_s=30.0)
    return tagged, untagged


def test_tagging_overhead_negligible(benchmark, report):
    tagged, untagged = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert len(tagged.tags) == 3
    assert tagged.overhead.collection_s == pytest.approx(
        untagged.overhead.collection_s, rel=0.02
    )
    assert tagged.overhead.total_s == pytest.approx(
        untagged.overhead.total_s, rel=0.02
    )
    report("Tagging ablation (3 work loops, 6 tag calls)", [
        ("collection overhead", "unchanged",
         f"tagged {tagged.overhead.collection_s * 1000:.1f} ms vs "
         f"untagged {untagged.overhead.collection_s * 1000:.1f} ms"),
        ("total MonEQ time", "almost negligible difference",
         f"tagged {tagged.overhead.total_s * 1000:.1f} ms vs "
         f"untagged {untagged.overhead.total_s * 1000:.1f} ms"),
    ])
