"""Ablation: environmental-database polling interval vs server load.

The paper: "a shorter polling interval would be ideal, [but] the
resulting volume of data alone would exceed the server's processing
capacity."  Sweeping the interval on a Mira-scale sensor population
locates the feasibility boundary inside the configurable 60-1800 s
range — right around the ~4 minute default Argonne ran.
"""

from repro.bgq.machine import BgqMachine
from repro.sim.rng import RngRegistry

INTERVALS_S = (60.0, 120.0, 240.0, 600.0, 1800.0)


def sweep():
    machine = BgqMachine(racks=48, rng=RngRegistry(93), start_poller=False)
    rows = [(interval, machine.envdb.capacity_fraction(interval))
            for interval in INTERVALS_S]
    return rows, machine.envdb.shortest_sustainable_interval()


def test_envdb_interval_ablation(benchmark, report):
    rows, shortest = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_interval = dict(rows)
    assert by_interval[60.0] > 1.0      # infeasible at the minimum
    assert by_interval[240.0] <= 1.0    # the ~4 min default fits
    assert 60.0 < shortest <= 240.0
    report("Env-DB polling ablation (48-rack Mira)", [
        (f"{interval:.0f} s", "feasible iff load <= 1.0",
         f"server load {fraction:.2f}x")
        for interval, fraction in rows
    ] + [("shortest sustainable", "~4 min in practice", f"{shortest:.0f} s")])
