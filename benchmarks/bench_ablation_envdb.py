"""Ablation: environmental-database polling interval vs server load.

The paper: "a shorter polling interval would be ideal, [but] the
resulting volume of data alone would exceed the server's processing
capacity."  Sweeping the interval on a Mira-scale sensor population
locates the feasibility boundary inside the configurable 60-1800 s
range — right around the ~4 minute default Argonne ran.

A second sweep varies the shard count instead: sharding the store by
rack prefix divides the offered load across per-shard ingest ceilings,
moving the same boundary down to (and past) the 60 s minimum.
"""

from repro.bgq.machine import BgqMachine
from repro.sim.rng import RngRegistry

INTERVALS_S = (60.0, 120.0, 240.0, 600.0, 1800.0)
SHARD_COUNTS = (1, 4, 16)


def sweep():
    machine = BgqMachine(racks=48, rng=RngRegistry(93), start_poller=False)
    rows = [(interval, machine.envdb.capacity_fraction(interval))
            for interval in INTERVALS_S]
    return rows, machine.envdb.shortest_sustainable_interval()


def test_envdb_interval_ablation(benchmark, report):
    rows, shortest = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_interval = dict(rows)
    assert by_interval[60.0] > 1.0      # infeasible at the minimum
    assert by_interval[240.0] <= 1.0    # the ~4 min default fits
    assert 60.0 < shortest <= 240.0
    report("Env-DB polling ablation (48-rack Mira)", [
        (f"{interval:.0f} s", "feasible iff load <= 1.0",
         f"server load {fraction:.2f}x")
        for interval, fraction in rows
    ] + [("shortest sustainable", "~4 min in practice", f"{shortest:.0f} s")])


def shard_sweep():
    rows = []
    for shards in SHARD_COUNTS:
        machine = BgqMachine(racks=48, rng=RngRegistry(93),
                             start_poller=False, envdb_shards=shards)
        rows.append((shards,
                     machine.envdb.capacity_fraction(60.0),
                     machine.envdb.shortest_sustainable_interval()))
    return rows


def test_envdb_shard_ablation(benchmark, report):
    rows = benchmark.pedantic(shard_sweep, rounds=1, iterations=1)
    by_shards = {shards: (load, shortest) for shards, load, shortest in rows}
    assert by_shards[1][0] > 1.0        # the paper's single server saturates
    assert by_shards[1][1] > 60.0       # 60 s stays out of reach unsharded
    assert by_shards[16][0] < 1.0       # 16 shards absorb the 60 s sweep
    assert by_shards[16][1] == 60.0     # clamped to the configurable floor
    report("Env-DB shard ablation (48-rack Mira, 60 s interval)", [
        (f"{shards} shard(s)", "hottest-shard load at 60 s",
         f"{load:.2f}x, shortest {shortest:.0f} s")
        for shards, load, shortest in rows
    ])
