"""Benchmark: regenerate Figure 4 (K20 NOOP power ramp)."""

from repro.experiments import fig4


def test_fig4(benchmark, report):
    result = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    assert 52.0 < result.level_w < 58.0
    assert 2.0 < result.time_to_level_s < 8.0
    report("Figure 4", [
        ("start", "~44-46 W", f"{result.start_w:.1f} W"),
        ("level", "~55 W", f"{result.level_w:.1f} W"),
        ("ramp", "levels off after ~5 s",
         f"{result.time_to_level_s:.1f} s to 95% of the rise"),
    ])
