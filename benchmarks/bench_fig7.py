"""Benchmark: regenerate Figure 7 (Phi API vs daemon power boxplot)."""

from repro.experiments import fig7


def test_fig7(benchmark, report):
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    assert result.api_box.median > result.daemon_box.median
    assert 0.5 < result.ttest.mean_difference < 4.0
    assert result.ttest.significant(alpha=0.01)
    report("Figure 7", [
        ("API arm", "higher, ~113-117.5 W box",
         f"median {result.api_box.median:.2f} W, "
         f"IQR [{result.api_box.q1:.2f}, {result.api_box.q3:.2f}]"),
        ("daemon arm", "lower, ~111-115 W box",
         f"median {result.daemon_box.median:.2f} W, "
         f"IQR [{result.daemon_box.q1:.2f}, {result.daemon_box.q3:.2f}]"),
        ("difference", "slight but statistically significant",
         f"{result.ttest.mean_difference:+.2f} W, p={result.ttest.pvalue:.1e}"),
    ])
