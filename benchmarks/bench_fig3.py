"""Benchmark: regenerate Figure 3 (RAPL package power, Gaussian
elimination at 100 ms)."""

from repro.experiments import fig3


def test_fig3(benchmark, report):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    assert result.idle_head_w < 10.0
    assert 38.0 < result.plateau_w < 52.0
    assert 3.0 < result.drop_depth_w < 7.0
    assert result.spike_height_w > 0.5
    report("Figure 3", [
        ("capture", "starts before / ends after run",
         f"idle head {result.idle_head_w:.1f} W, tail {result.idle_tail_w:.1f} W"),
        ("plateau", "~45-50 W", f"{result.plateau_w:.1f} W"),
        ("rhythmic drop", "~5 W at regular intervals",
         f"{result.drop_depth_w:.1f} W every {result.drop_period_s:.1f} s"),
        ("tiny spikes", "between the drops",
         f"+{result.spike_height_w:.1f} W"),
    ])
