"""Benchmark: regenerate Figure 6 (Phi control-panel architecture)."""

from repro.experiments import fig6


def test_fig6(benchmark, report):
    result = benchmark(fig6.run)
    assert all(result.path_exists.values())
    assert result.symmetric_scif
    report("Figure 6", [
        ("in-band path", "host -> SCIF -> card registers",
         f"reachable={result.path_exists['in-band']}, "
         f"{1000 * result.path_costs['in-band']:.1f} ms/query"),
        ("out-of-band path", "SMC -> BMC over IPMB",
         f"reachable={result.path_exists['out-of-band']}, "
         f"{1000 * result.path_costs['out-of-band']:.1f} ms/query"),
        ("MICRAS path", "pseudo-files on the card",
         f"reachable={result.path_exists['micras']}, "
         f"{1000 * result.path_costs['micras']:.2f} ms/query"),
        ("SCIF symmetry", "same interfaces host and card",
         str(result.symmetric_scif)),
    ])
