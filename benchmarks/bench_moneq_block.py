"""Acceptance bench for the columnar block-sampling engine.

The engine's promise is a constant-factor rewrite: identical bytes out,
an order of magnitude (or more) less wall-clock in.  This bench runs
the 1024-agent, 10k-tick configuration from the issue and holds the
line at 10x over the scalar tick loop (measured on a slice and
extrapolated — the full scalar run is ~10M Python-level reads, which is
exactly the cost being removed).  `python -m repro bench perf` runs the
same measurements outside pytest and records them in BENCH_moneq.json.
"""

from repro.perfbench import bench_moneq_block, bench_moneq_full_session


def test_block_sampling_speedup_at_scale(benchmark):
    """1024 agents x 10k ticks: >= 10x over scalar, bytes identical."""
    result = benchmark.pedantic(bench_moneq_block, rounds=1, iterations=1)
    assert result["byte_identical"], "block output diverged from scalar"
    assert result["speedup_vs_scalar"] >= 10.0, (
        f"block sampling only {result['speedup_vs_scalar']:.1f}x over scalar"
    )


def test_full_session_profits_from_blocks(benchmark):
    """The ordinary 60 s profile_run also gets faster end to end (both
    paths run in full here — no extrapolation)."""
    result = benchmark.pedantic(bench_moneq_full_session, rounds=1, iterations=1)
    assert result["speedup_vs_scalar"] > 1.5
