"""Benchmark: the per-query overhead survey (§II running text)."""

import pytest

from repro.experiments import overheads

PAPER_MS = {
    "bgq-emon": 1.10,
    "rapl-msr": 0.03,
    "nvml": 1.3,
    "phi-sysmgmt": 14.2,
    "phi-micras": 0.04,
}


def test_overheads(benchmark, report):
    result = benchmark(overheads.run)
    rows = []
    for key, paper_ms in PAPER_MS.items():
        measured_ms = 1000.0 * result.costs[key].per_query_s
        assert measured_ms == pytest.approx(paper_ms, rel=0.08)
        rows.append((result.costs[key].mechanism, f"{paper_ms} ms",
                     f"{measured_ms:.3f} ms"))
    assert result.ordering() == [
        "rapl-msr", "phi-micras", "bgq-emon", "nvml", "phi-sysmgmt"
    ]
    rows.append(("BG/Q duty overhead", "0.19 %",
                 f"{result.costs['bgq-emon'].overhead_percent:.2f} %"))
    rows.append(("NVML duty overhead", "1.25 %",
                 f"{result.costs['nvml'].overhead_percent:.2f} %"))
    rows.append(("Phi API duty overhead", "~14 %",
                 f"{result.costs['phi-sysmgmt'].overhead_percent:.1f} %"))
    report("Per-query overheads", rows)
