#!/usr/bin/env python
"""Vendor survey — regenerate the paper's comparison artifacts in one go.

Prints Table I (capability matrix), Table II (RAPL domains), the
per-query overhead survey, and the RAPL overflow sweep — the paper's
§II in a single run.

Run:  python examples/vendor_survey.py
"""

from repro.experiments import overheads, rapl_overflow, table1, table2


def main() -> None:
    table1.main()
    print("\n" + "=" * 70 + "\n")
    table2.main()
    print("\n" + "=" * 70 + "\n")
    overheads.main()
    print("\n" + "=" * 70 + "\n")
    rapl_overflow.main()


if __name__ == "__main__":
    main()
