#!/usr/bin/env python
"""BG/Q scenario — the Figure 1 vs Figure 2 contrast.

Runs the MMPS interconnect benchmark on one node card of a simulated
BG/Q rack and observes it through *both* mechanisms:

* the environmental database (BPM AC-input power, ~4-minute polls,
  idle shelf visible before and after the job), and
* MonEQ over EMON (7 DC domains at 560 ms, no idle shelf, ~500x the
  samples).

Run:  python examples/bgq_mmps.py
"""

from repro.analysis.compare import idle_visibility
from repro.bgq.domains import BGQ_DOMAINS
from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceSeries
from repro.workloads.mmps import MmpsWorkload

import numpy as np

JOB_START, JOB_LEN, WINDOW = 600.0, 1500.0, 2700.0


def main() -> None:
    machine = BgqMachine(racks=1, rng=RngRegistry(7), poll_interval_s=240.0)
    workload = MmpsWorkload(duration=JOB_LEN)
    boards = machine.run_job(workload, node_count=32, t_start=JOB_START)
    board = boards[0]
    print(f"machine: 1 BG/Q rack ({machine.node_count} nodes); job: "
          f"{workload.name} on {board.location}, "
          f"{workload.rate / 1e6:.1f} M messages/s/node")

    # --- MonEQ session covering the job window ------------------------------
    machine.advance_to(JOB_START)
    session = MoneqSession(
        [BgqEmonBackend(machine.emon(board.location))], machine.events,
        config=MoneqConfig(polling_interval_s=0.560), node_count=32,
    )
    machine.advance_to(JOB_START + JOB_LEN)
    moneq_result = session.finalize()
    machine.advance_to(WINDOW)

    # --- Environmental-database view ---------------------------------------
    times, watts = machine.envdb.bpm_input_power_series(board.location, 0.0, WINDOW)
    env_series = TraceSeries(np.asarray(times), np.asarray(watts),
                             "bpm_input", "W")
    env_idle = idle_visibility(env_series)
    print(f"\nenvironmental DB: {len(env_series)} samples over "
          f"{WINDOW / 60:.0f} min")
    print(f"  idle shelf {env_idle.idle_level:.0f} W -> job plateau "
          f"{env_idle.active_level:.0f} W (idle visible: {env_idle.visible})")

    # --- MonEQ view ----------------------------------------------------------
    traces = moneq_result.traces[board.location]
    total = traces["node_card_w"]
    print(f"\nMonEQ over EMON: {len(total)} samples at 560 ms")
    for spec in BGQ_DOMAINS:
        series = traces[f"{spec.domain.value}_w"]
        print(f"  {spec.domain.value:16s} {series.mean():7.1f} W mean")
    print(f"  {'node card':16s} {total.mean():7.1f} W mean "
          f"(DC; BPM shows AC input = DC/0.9 + overhead)")
    print(f"\nsample-count ratio MonEQ:envDB = {len(total)}:{len(env_series)}")
    print(f"MonEQ overhead: {moneq_result.overhead.percent_of_runtime:.2f}% "
          "of the job")


if __name__ == "__main__":
    main()
