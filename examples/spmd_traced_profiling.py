#!/usr/bin/env python
"""Full-stack scenario — MPI program to power trace, end to end.

1. Run a halo-exchange SPMD program on the MPI-like runtime (real
   sends/receives, LogGP costs, deadlock-checked).
2. Convert the recorded per-rank busy spans into a workload.
3. Host that workload on a simulated RAPL socket and profile it with
   MonEQ at 100 ms — Figure 3's methodology, with the rhythm *derived
   from the program's communication structure* instead of modeled.

Run:  python examples/spmd_traced_profiling.py
"""

from repro.analysis.figures import ascii_chart
from repro.core import moneq
from repro.core.moneq.config import MoneqConfig
from repro.runtime.ops import Barrier, Compute, Recv, Send
from repro.runtime.trace2workload import workload_from_program
from repro.testbeds import rapl_node
from repro.workloads.base import Component


def halo_program(ctx):
    """8 iterations of compute + 1 GB halo exchange on a ring."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    for it in range(8):
        yield Compute(0.8)
        yield Send(dest=right, payload=None, nbytes=1 << 30, tag=2 * it)
        yield Send(dest=left, payload=None, nbytes=1 << 30, tag=2 * it + 1)
        yield Recv(source=left, tag=2 * it)
        yield Recv(source=right, tag=2 * it + 1)
    yield Barrier()


def main() -> None:
    workload, ranks = workload_from_program(
        halo_program, size=4, component=Component.CPU_CORES,
        extra_components={Component.CPU_DRAM: 0.5},
        name="halo-exchange-traced", bucket_s=0.05,
    )
    print(f"program: 4 ranks, finished at {workload.duration:.2f} s, "
          f"mean busy fraction {workload.metadata['mean_busy_fraction']:.2f}")
    print(f"messages: {sum(r.messages_sent for r in ranks)} sent / "
          f"{sum(r.messages_received for r in ranks)} received")

    node, _ = rapl_node(seed=77, workload=workload, workload_start=1.0)
    result = moneq.profile_run(
        node, duration_s=workload.duration + 2.0,
        config=MoneqConfig(polling_interval_s=0.100),
    )
    pkg = result.trace("pkg_w")
    print(f"\nMonEQ capture: {len(pkg)} samples at 100 ms, "
          f"mean {pkg.mean():.1f} W\n")
    print(ascii_chart(pkg, width=70, height=12,
                      title="package power of the traced halo exchange"))


if __name__ == "__main__":
    main()
