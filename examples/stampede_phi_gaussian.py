#!/usr/bin/env python
"""Stampede scenario — the Figure 8 experiment at adjustable scale.

Offloaded Gaussian elimination across N Xeon Phi cards: the host
sockets generate data for ~100 s while the cards idle, then the cards
compute.  Prints the phase powers and the summed series downsampled for
the terminal.

Run:  python examples/stampede_phi_gaussian.py [cards]
"""

import sys

import numpy as np

from repro.sim.trace import TraceSeries
from repro.testbeds import stampede_slice
from repro.workloads.gaussian import OffloadGaussianWorkload


def main(cards: int = 128) -> None:
    cluster = stampede_slice(cards=cards, seed=21)
    workload = OffloadGaussianWorkload(datagen_seconds=100.0)
    for card in cluster.devices("mic"):
        card.board.schedule(workload, t_start=0.0)
    for package in cluster.devices("cpu"):
        package.board.schedule(workload, t_start=0.0)  # host-side phases

    horizon = workload.duration + 10.0
    times = np.arange(0.0, horizon, 1.0)
    card_sum = np.zeros_like(times)
    for card in cluster.devices("mic"):
        card_sum += card.true_power(times)
    series = TraceSeries(times, card_sum, "sum_card_power", "W")

    print(f"{cards} Xeon Phi cards on {len(cluster)} Stampede nodes")
    print(f"phases: datagen 100 s -> transfer "
          f"{workload.metadata['transfer_seconds']:.0f} s -> compute "
          f"{workload.metadata['compute_seconds']:.0f} s")
    print(f"datagen sum power: {series.between(5, 95).mean() / 1e3:8.1f} kW")
    print(f"compute sum power: "
          f"{series.between(120, horizon - 20).mean() / 1e3:8.1f} kW\n")

    # Terminal sparkline of the Figure 8 curve.
    buckets = series.resample(10.0)
    peak = buckets.values.max()
    for t, w in zip(buckets.times, buckets.values):
        bar = "#" * int(48 * w / peak)
        print(f"  {t:6.0f} s {w / 1e3:7.1f} kW |{bar}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
