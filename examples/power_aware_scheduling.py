#!/usr/bin/env python
"""Extension scenario — closing the loop from measurement to savings.

The paper motivates environmental data with its prior work: power-aware
scheduling on BG/Q saved "up to 23% on the electricity bill".  This
example closes that loop on the simulators:

1. profile two job classes with MonEQ to obtain their mean power;
2. feed the measured profiles to the pricing-aware scheduler;
3. compare the electricity bill against a power-oblivious baseline.

Run:  python examples/power_aware_scheduling.py
"""

from repro.core import moneq
from repro.host.pricing import Tariff
from repro.scheduling import Job, fcfs_schedule, power_aware_schedule, savings_percent
from repro.testbeds import rapl_node
from repro.units import HOUR
from repro.workloads.gaussian import GaussianEliminationWorkload
from repro.workloads.toy import IdleWorkload


def measured_mean_power(workload, seed: int) -> float:
    """Profile a workload with MonEQ and return its mean package power."""
    node, _ = rapl_node(seed=seed, workload=workload, workload_start=2.0)
    result = moneq.profile_run(node, duration_s=min(workload.duration + 4.0, 60.0))
    trace = result.trace("pkg_w")
    busy = trace.between(4.0, trace.times[-1])
    return busy.mean()


def main() -> None:
    heavy_w = measured_mean_power(GaussianEliminationWorkload(n=12_000), seed=71)
    light_w = measured_mean_power(IdleWorkload(50.0), seed=72)
    print(f"MonEQ-measured power: simulation {heavy_w:.1f} W/node, "
          f"housekeeping {light_w:.1f} W/node")

    # Scale to a 1024-node BG/Q-ish machine: per-node watts x nodes.
    arrive = 9.0 * HOUR
    jobs = (
        [Job(f"sim-{i}", 5 * HOUR, heavy_w * 512, nodes=512, submit_s=arrive)
         for i in range(3)]
        + [Job(f"post-{i}", 2 * HOUR, light_w * 128, nodes=128, submit_s=arrive)
           for i in range(4)]
    )
    tariff = Tariff.day_night(on_peak=0.12, off_peak=0.04)

    baseline = fcfs_schedule(jobs, tariff, capacity=1024)
    aware = power_aware_schedule(jobs, tariff, capacity=1024)
    print(f"\npower-oblivious bill : ${baseline.cost_dollars:8.2f} "
          f"(makespan {baseline.makespan_s / HOUR:.1f} h)")
    print(f"power-aware bill     : ${aware.cost_dollars:8.2f} "
          f"(makespan {aware.makespan_s / HOUR:.1f} h)")
    print(f"savings              : {savings_percent(baseline, aware):.1f}% "
          "(the paper's reference [2] reported up to 23%)")
    print("\nplacements (power-aware):")
    for placement in sorted(aware.placements, key=lambda p: p.t_start):
        start_h = placement.t_start / HOUR
        print(f"  {placement.job.name:8s} starts {start_h:5.1f} h "
              f"({placement.job.mean_power_w / 1e3:7.1f} kW)")


if __name__ == "__main__":
    main()
