#!/usr/bin/env python
"""Hybrid-node scenario — CPU + GPU + Xeon Phi profiled at once.

The paper: "if a system has both a NVIDIA GPU as well as an Intel Xeon
Phi, profiling is possible for both of these devices at the same time."
This example builds such a node, runs an offloaded vector-add on the
GPU while the Phi crunches Gaussian elimination, wraps the interesting
regions in MonEQ tags, and prints the per-device and per-tag summaries.

Run:  python examples/multi_device_profiling.py
"""

from repro.core import moneq
from repro.nvml.api import NvmlLibrary
from repro.nvml.smi import render_smi
from repro.testbeds import multi_device_node
from repro.workloads.gaussian import GaussianEliminationWorkload, OffloadGaussianWorkload
from repro.workloads.vectoradd import VectorAddWorkload


def main() -> None:
    node, rig = multi_device_node(seed=11)
    package = node.device("cpu")
    gpu = node.device("gpu")

    # Stage the work: host GE feeding the GPU, offloaded GE on the Phi.
    package.board.schedule(GaussianEliminationWorkload(n=9000, gflops=40.0),
                           t_start=2.0)
    gpu.board.schedule(VectorAddWorkload(), t_start=2.0)
    rig.card.board.schedule(OffloadGaussianWorkload(datagen_seconds=20.0),
                            t_start=2.0)
    print(f"node {node.hostname}: devices {node.device_kinds()}")

    session = moneq.initialize(node)
    print(f"MonEQ agents: {[a.backend.label for a in session.agents]}")
    print(f"polling interval: {session.interval_s * 1000:.0f} ms "
          "(slowest hardware minimum governs)")

    node.events.run_until(node.clock.now + 10.0)
    session.start_tag("early-phase")
    node.events.run_until(node.clock.now + 30.0)
    session.end_tag("early-phase")
    with session.tag("late-phase"):
        node.events.run_until(node.clock.now + 60.0)

    result = moneq.finalize(session)
    print()
    for label, traces in result.traces.items():
        power_field = next(n for n in traces.names if n.endswith("_w"))
        series = traces[power_field]
        print(f"  {label:24s} {power_field:10s} mean {series.mean():7.1f} W "
              f"({len(series)} samples)")

    print("\nper-tag energy (package domain):")
    pkg = result.traces[f"{node.hostname}-socket0"]["pkg_w"]
    for tag in result.tags:
        window = pkg.between(tag.t_start, tag.t_end)
        print(f"  {tag.name:12s} [{tag.t_start:6.1f}, {tag.t_end:6.1f}] s: "
              f"{window.energy():8.0f} J")
    print(f"\noutput files: {result.output_paths}")

    # An admin's view of the same moment, via the NVML status renderer.
    nvml = NvmlLibrary(node)
    nvml.init()
    print()
    print(render_smi(nvml))


if __name__ == "__main__":
    main()
