#!/usr/bin/env python
"""Listing 1 scenario — the paper's MPI usage pattern, whole stack.

The paper's Listing 1:

    status = MPI_Init(&argc, &argv);
    MPI_Comm_size(MPI_COMM_WORLD, &numtasks);
    MPI_Comm_rank(MPI_COMM_WORLD, &myrank);
    status = MonEQ_Initialize();      // Setup Power
    /* User code */
    status = MonEQ_Finalize();        // Finalize Power
    MPI_Finalize();

Here the "user code" is a bulk-synchronous stencil program on 64 ranks
(2 BG/Q node cards); `profile_spmd` plays the MPI+MonEQ glue: the
program's measured busy structure drives the node boards, and one EMON
agent per card collects the 7 domains at 560 ms.

Run:  python examples/listing1_spmd.py
"""

from repro.analysis.figures import ascii_chart
from repro.bgq.machine import BgqMachine
from repro.core.moneq.spmd import profile_spmd
from repro.runtime.ops import Barrier, Compute, Recv, Send
from repro.sim.rng import RngRegistry


def user_code(ctx):
    """6 BSP iterations: 25 s compute + 1 GB halo with the right neighbor."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    for it in range(6):
        yield Compute(25.0)
        yield Send(dest=right, payload=None, nbytes=1 << 30, tag=it)
        yield Recv(source=left, tag=it)
    yield Barrier()
    return "ok"


def main() -> None:
    machine = BgqMachine(racks=1, rng=RngRegistry(123), start_poller=False)
    result = profile_spmd(machine, user_code, ranks=64)

    print(f"ranks: {len(result.ranks)}, node cards: {result.boards}")
    print(f"program elapsed: {result.program_elapsed_s:.1f} s "
          f"(virtual); MonEQ ticks: {result.moneq.overhead.ticks}")
    print(f"MonEQ overhead: {result.moneq.overhead.percent_of_runtime:.2f}% "
          "of the run\n")
    trace = result.moneq.traces[result.boards[0]]["node_card_w"]
    print(ascii_chart(trace, width=70, height=12,
                      title=f"node card {result.boards[0]}: power during the "
                            "BSP program (7-domain total)"))
    chip = result.moneq.traces[result.boards[0]]["chip_core_w"]
    dram = result.moneq.traces[result.boards[0]]["dram_w"]
    print(f"\nchip core mean {chip.mean():.0f} W, DRAM mean {dram.mean():.0f} W")
    print(f"output files: {result.moneq.output_paths}")


if __name__ == "__main__":
    main()
