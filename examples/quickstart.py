#!/usr/bin/env python
"""Quickstart — the paper's two-line MonEQ usage.

Builds a simulated RAPL workstation running Gaussian elimination and
profiles it with exactly the MonEQ contract from Listing 1:

    status = MonEQ_Initialize();   ->  session = moneq.initialize(node)
    /* User code */                ->  node.events.run_until(...)
    status = MonEQ_Finalize();     ->  result = moneq.finalize(session)

Run:  python examples/quickstart.py
"""

from repro.core import moneq
from repro.testbeds import rapl_node


def main() -> None:
    node, workload = rapl_node(seed=42)
    print(f"node: {node.hostname}, kernel {node.kernel.version}, "
          f"workload: {workload.name} ({workload.duration:.0f} s)")

    session = moneq.initialize(node)                     # line 1
    node.events.run_until(node.clock.now + 70.0)         # "user code"
    result = moneq.finalize(session)                     # line 2

    pkg = result.trace("pkg_w")
    print(f"\ncollected {len(pkg)} samples at "
          f"{session.interval_s * 1000:.0f} ms")
    print(f"package power: mean {pkg.mean():.1f} W, "
          f"min {pkg.min():.1f} W, max {pkg.max():.1f} W")
    print(f"energy over the window: {pkg.energy():.0f} J")
    print(f"\noverhead: init {result.overhead.initialize_s * 1000:.2f} ms, "
          f"collect {result.overhead.collection_s * 1000:.1f} ms, "
          f"finalize {result.overhead.finalize_s * 1000:.1f} ms "
          f"({result.overhead.percent_of_runtime:.2f}% of runtime)")
    print(f"output file: {result.output_paths[0]} (in the node's VFS)")


if __name__ == "__main__":
    main()
